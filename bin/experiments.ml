(* The experiment harness CLI: regenerates every table in EXPERIMENTS.md.

   Usage:
     cobra-experiments list
     cobra-experiments run e4 [--full] [--seed N] [--domains K]
     cobra-experiments run all --full [--obs-out DIR] [--journal DIR] [--deadline SECS]
     cobra-experiments run all --full --resume DIR   # continue a killed run

   Long sweeps are fault tolerant: with --journal every completed trial
   is checkpointed to DIR/journal.jsonl, Ctrl-C cancels cooperatively
   (in-flight chunks finish, the journal is flushed) and --resume
   replays checkpointed trials so the regenerated tables are
   bit-identical to an uninterrupted run with the same seed. *)

module Experiment = Cobra_experiments.Experiment
module Registry = Cobra_experiments.Registry
module Obs = Cobra_obs.Obs
module Pool = Cobra_parallel.Pool
module Montecarlo = Cobra_parallel.Montecarlo
module Journal = Cobra_parallel.Journal

open Cmdliner

let seed_arg =
  let doc = "Master seed; every number in the output is a deterministic function of it." in
  Arg.(value & opt int 2017 & info [ "seed" ] ~docv:"SEED" ~doc)

let domains_arg =
  let doc = "Worker domains to add to the pool (default: cores - 1)." in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"K" ~doc)

let full_arg =
  let doc = "Run at full scale (the EXPERIMENTS.md numbers) instead of quick scale." in
  Arg.(value & flag & info [ "full" ] ~doc)

let out_arg =
  let doc =
    "Also write each experiment's output to $(docv)/<id>.txt (directory is created)."
  in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)

let obs_out_arg =
  let doc =
    "Write observability artefacts to $(docv)/<id>/: manifest.json (seed, scale, domain \
     count, OCaml version, git revision, hostname), metrics.json (trial latency \
     histograms, throughput, wall time) and events.jsonl (one trace event per line)."
  in
  Arg.(value & opt (some string) None & info [ "obs-out" ] ~docv:"DIR" ~doc)

let journal_arg =
  let doc =
    "Checkpoint every completed Monte-Carlo trial to $(docv)/journal.jsonl (directory is \
     created, an existing journal is truncated).  A run killed by Ctrl-C, a deadline or a \
     crashing trial can then be continued with --resume $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR" ~doc)

let resume_arg =
  let doc =
    "Resume from the checkpoints in $(docv)/journal.jsonl: already-completed trials are \
     replayed into the tables instead of re-simulated, newly completed trials are appended \
     to the same journal.  Because trials are seeded deterministically, the resumed run's \
     tables are bit-identical to an uninterrupted run with the same seed and scale."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"DIR" ~doc)

let deadline_arg =
  let doc =
    "Abort any single Monte-Carlo sweep that runs longer than $(docv) seconds.  The \
     experiment owning the sweep is reported incomplete (its checkpoints are kept for \
     --resume) and the harness moves on to the next experiment."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)

let retries_arg =
  let doc = "Re-run a failing trial up to $(docv) times before recording it as failed." in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Experiment.t) -> Printf.printf "%-4s %s\n     %s\n" e.id e.title e.claim)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available experiments") Term.(const run $ const ())

let mkdir_p dir =
  let rec ensure dir =
    if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      ensure (Filename.dirname dir);
      Sys.mkdir dir 0o755
    end
  in
  ensure dir

let write_file path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

(* One observability context per experiment; [finish] persists the
   manifest and the metrics snapshot next to the event stream.  [finish]
   also runs when the experiment is interrupted, so a killed run leaves
   complete manifests behind. *)
let obs_for obs_out (e : Experiment.t) ~seed ~scale ~domains =
  match obs_out with
  | None -> (Obs.null, fun () -> ())
  | Some dir ->
      let edir = Filename.concat dir e.id in
      mkdir_p edir;
      let obs = Obs.create ~sink:(Cobra_obs.Trace.jsonl (Filename.concat edir "events.jsonl")) () in
      let finish () =
        let manifest = Experiment.manifest e ~master_seed:seed ~scale ~domains in
        write_file (Filename.concat edir "manifest.json")
          (Cobra_obs.Json.to_string_pretty (Cobra_obs.Manifest.to_json manifest) ^ "\n");
        write_file (Filename.concat edir "metrics.json")
          (Cobra_obs.Json.to_string_pretty
             (Cobra_obs.Report.to_json (Cobra_obs.Metrics.snapshot (Obs.metrics obs)))
          ^ "\n");
        Obs.close obs
      in
      (obs, finish)

let journal_of ~journal ~resume =
  match (resume, journal) with
  | None, None -> Ok None
  | Some rdir, Some jdir when rdir <> jdir ->
      Error
        (Printf.sprintf
           "--journal %s conflicts with --resume %s: --resume already appends new \
            checkpoints to its own journal"
           jdir rdir)
  | Some dir, _ ->
      mkdir_p dir;
      let j = Journal.load (Filename.concat dir "journal.jsonl") in
      Printf.printf "[resume] %s: %d checkpointed trials loaded%s\n%!" (Journal.path j)
        (Journal.loaded j)
        (if Journal.malformed j > 0 then
           Printf.sprintf " (%d malformed lines skipped)" (Journal.malformed j)
         else "");
      Ok (Some j)
  | None, Some dir ->
      mkdir_p dir;
      Ok (Some (Journal.create (Filename.concat dir "journal.jsonl")))

let resume_hint journal =
  match journal with
  | Some j -> Printf.sprintf "; resume with --resume %s" (Filename.dirname (Journal.path j))
  | None -> ""

let run_experiments ids seed domains full out obs_out journal_dir resume_dir deadline retries =
  let scale = if full then Experiment.Full else Experiment.Quick in
  Option.iter mkdir_p out;
  (match deadline with
  | Some d when not (d > 0.0) ->
      prerr_endline "--deadline must be positive";
      exit 2
  | _ -> ());
  if retries < 0 then begin
    prerr_endline "--retries must be >= 0";
    exit 2
  end;
  match (Registry.select ids, journal_of ~journal:journal_dir ~resume:resume_dir) with
  | Error msg, _ | _, Error msg ->
      prerr_endline msg;
      exit 1
  | Ok experiments, Ok journal ->
      (* Ctrl-C and SIGTERM cancel cooperatively: in-flight chunks
         finish, completed trials are checkpointed and manifests
         written, then the harness exits with the conventional code for
         the signal (130 for SIGINT, 143 for SIGTERM).  A second signal
         aborts immediately. *)
      let cancel = Pool.Cancel.create () in
      let signal_exit = ref 130 in
      let on_signal signum =
        let code = if signum = Sys.sigterm then 143 else 130 in
        signal_exit := code;
        if Pool.Cancel.cancelled cancel then exit code
        else begin
          prerr_endline
            "\n[interrupt] cancelling after in-flight chunks; checkpointing completed \
             trials (signal again to abort hard)";
          Pool.Cancel.cancel cancel
        end
      in
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      let failed = ref [] in
      let interrupted = ref false in
      Fun.protect
        ~finally:(fun () ->
          match journal with
          | Some j ->
              if Journal.appended j > 0 || Journal.replayed j > 0 then
                Printf.printf "[journal] %s: %d trials replayed, %d checkpoints appended\n%!"
                  (Journal.path j) (Journal.replayed j) (Journal.appended j);
              Journal.close j
          | None -> ())
        (fun () ->
          Pool.with_pool ?num_domains:domains (fun pool ->
              List.iter
                (fun (e : Experiment.t) ->
                  if not !interrupted then begin
                    Option.iter (fun j -> Journal.set_experiment j e.id) journal;
                    print_string (Experiment.header e);
                    let obs, finish =
                      obs_for obs_out e ~seed ~scale ~domains:(Pool.size pool)
                    in
                    let timer = Cobra_obs.Timer.start () in
                    match
                      Fun.protect
                        ~finally:(fun () -> finish ())
                        (fun () ->
                          Montecarlo.with_context ?journal ~cancel ?deadline_s:deadline
                            ~retries (fun () ->
                              Experiment.run_observed ~obs e ~pool ~master_seed:seed ~scale))
                    with
                    | output ->
                        print_string output;
                        (match out with
                        | Some dir ->
                            write_file
                              (Filename.concat dir (e.id ^ ".txt"))
                              (Experiment.header e ^ output)
                        | None -> ());
                        Printf.printf "[%s finished in %.1fs]\n\n%!" e.id
                          (Cobra_obs.Timer.elapsed_s timer)
                    | exception Montecarlo.Interrupted { reason = `Cancelled; completed; total }
                      ->
                        interrupted := true;
                        Printf.printf
                          "[%s interrupted: %d/%d trials of the current sweep done%s]\n%!"
                          e.id completed total (resume_hint journal)
                    | exception Montecarlo.Interrupted { reason = `Deadline; completed; total }
                      ->
                        failed := (e.id, "deadline exceeded") :: !failed;
                        Printf.printf
                          "[%s abandoned: sweep deadline exceeded after %d/%d trials%s]\n\n%!"
                          e.id completed total (resume_hint journal)
                    | exception exn ->
                        (* A trial that still fails after its retries: the
                           rest of its ensemble is checkpointed, so report
                           and move on to the next experiment. *)
                        failed := (e.id, Printexc.to_string exn) :: !failed;
                        Printf.printf "[%s failed: %s%s]\n%s\n%!" e.id (Printexc.to_string exn)
                          (resume_hint journal) (Printexc.get_backtrace ())
                  end)
                experiments));
      if !interrupted then exit !signal_exit;
      match List.rev !failed with
      | [] -> ()
      | failures ->
          List.iter
            (fun (id, msg) -> Printf.eprintf "experiment %s did not complete: %s\n" id msg)
            failures;
          exit 1

let run_cmd =
  let ids_arg =
    let doc = "Experiment ids to run (e1 .. e16), or 'all'." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let term =
    Term.(
      const run_experiments $ ids_arg $ seed_arg $ domains_arg $ full_arg $ out_arg
      $ obs_out_arg $ journal_arg $ resume_arg $ deadline_arg $ retries_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run experiments and print their tables") term

let main_cmd =
  let doc = "Reproduce the quantitative claims of Cooper, Radzik, Rivera (SPAA 2017)" in
  let info = Cmd.info "cobra-experiments" ~version:"1.0.0" ~doc in
  Cmd.group info [ list_cmd; run_cmd ]

let () = exit (Cmd.eval main_cmd)
