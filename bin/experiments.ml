(* The experiment harness CLI: regenerates every table in EXPERIMENTS.md.

   Usage:
     cobra-experiments list
     cobra-experiments run e4 [--full] [--seed N] [--domains K]
     cobra-experiments run all --full [--obs-out DIR] *)

module Experiment = Cobra_experiments.Experiment
module Registry = Cobra_experiments.Registry
module Obs = Cobra_obs.Obs

open Cmdliner

let seed_arg =
  let doc = "Master seed; every number in the output is a deterministic function of it." in
  Arg.(value & opt int 2017 & info [ "seed" ] ~docv:"SEED" ~doc)

let domains_arg =
  let doc = "Worker domains to add to the pool (default: cores - 1)." in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"K" ~doc)

let full_arg =
  let doc = "Run at full scale (the EXPERIMENTS.md numbers) instead of quick scale." in
  Arg.(value & flag & info [ "full" ] ~doc)

let out_arg =
  let doc =
    "Also write each experiment's output to $(docv)/<id>.txt (directory is created)."
  in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)

let obs_out_arg =
  let doc =
    "Write observability artefacts to $(docv)/<id>/: manifest.json (seed, scale, domain \
     count, OCaml version, git revision, hostname), metrics.json (trial latency \
     histograms, throughput, wall time) and events.jsonl (one trace event per line)."
  in
  Arg.(value & opt (some string) None & info [ "obs-out" ] ~docv:"DIR" ~doc)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Experiment.t) -> Printf.printf "%-4s %s\n     %s\n" e.id e.title e.claim)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available experiments") Term.(const run $ const ())

let mkdir_p dir =
  let rec ensure dir =
    if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      ensure (Filename.dirname dir);
      Sys.mkdir dir 0o755
    end
  in
  ensure dir

let write_file path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

(* One observability context per experiment; [finish] persists the
   manifest and the metrics snapshot next to the event stream. *)
let obs_for obs_out (e : Experiment.t) ~seed ~scale ~domains =
  match obs_out with
  | None -> (Obs.null, fun () -> ())
  | Some dir ->
      let edir = Filename.concat dir e.id in
      mkdir_p edir;
      let obs = Obs.create ~sink:(Cobra_obs.Trace.jsonl (Filename.concat edir "events.jsonl")) () in
      let finish () =
        let manifest = Experiment.manifest e ~master_seed:seed ~scale ~domains in
        write_file (Filename.concat edir "manifest.json")
          (Cobra_obs.Json.to_string_pretty (Cobra_obs.Manifest.to_json manifest) ^ "\n");
        write_file (Filename.concat edir "metrics.json")
          (Cobra_obs.Json.to_string_pretty
             (Cobra_obs.Report.to_json (Cobra_obs.Metrics.snapshot (Obs.metrics obs)))
          ^ "\n");
        Obs.close obs
      in
      (obs, finish)

let run_experiments ids seed domains full out obs_out =
  let scale = if full then Experiment.Full else Experiment.Quick in
  Option.iter mkdir_p out;
  match Registry.select ids with
  | Error msg ->
      prerr_endline msg;
      exit 1
  | Ok experiments ->
      Cobra_parallel.Pool.with_pool ?num_domains:domains (fun pool ->
          List.iter
            (fun (e : Experiment.t) ->
              print_string (Experiment.header e);
              let obs, finish =
                obs_for obs_out e ~seed ~scale ~domains:(Cobra_parallel.Pool.size pool)
              in
              let timer = Cobra_obs.Timer.start () in
              let output = Experiment.run_observed ~obs e ~pool ~master_seed:seed ~scale in
              print_string output;
              finish ();
              (match out with
              | Some dir ->
                  write_file (Filename.concat dir (e.id ^ ".txt")) (Experiment.header e ^ output)
              | None -> ());
              Printf.printf "[%s finished in %.1fs]\n\n%!" e.id (Cobra_obs.Timer.elapsed_s timer))
            experiments)

let run_cmd =
  let ids_arg =
    let doc = "Experiment ids to run (e1 .. e16), or 'all'." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let term =
    Term.(
      const run_experiments $ ids_arg $ seed_arg $ domains_arg $ full_arg $ out_arg
      $ obs_out_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run experiments and print their tables") term

let main_cmd =
  let doc = "Reproduce the quantitative claims of Cooper, Radzik, Rivera (SPAA 2017)" in
  let info = Cmd.info "cobra-experiments" ~version:"1.0.0" ~doc in
  Cmd.group info [ list_cmd; run_cmd ]

let () = exit (Cmd.eval main_cmd)
