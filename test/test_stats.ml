(* Tests for the statistics toolkit. *)

module Summary = Cobra_stats.Summary
module Quantile = Cobra_stats.Quantile
module Regress = Cobra_stats.Regress
module Bootstrap = Cobra_stats.Bootstrap
module Histogram = Cobra_stats.Histogram
module Table = Cobra_stats.Table
module Rng = Cobra_prng.Rng

let check_float msg ?(eps = 1e-9) expected actual = Alcotest.(check (float eps)) msg expected actual
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Summary --- *)

let test_summary_known () =
  let s = Summary.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_int "count" 8 s.count;
  check_float "mean" 5.0 s.mean;
  (* population variance is 4; the unbiased sample variance is 32/7. *)
  check_float "variance" (32.0 /. 7.0) s.variance;
  check_float "min" 2.0 s.min;
  check_float "max" 9.0 s.max

let test_summary_empty_and_single () =
  let s = Summary.stats (Summary.create ()) in
  check_int "empty count" 0 s.count;
  check_bool "empty mean nan" true (Float.is_nan s.mean);
  let one = Summary.of_array [| 42.0 |] in
  check_float "single mean" 42.0 one.mean;
  check_float "single variance" 0.0 one.variance;
  check_bool "ci95 for n<2 unavailable" true (Float.is_nan (Summary.mean_confidence95 one))

let test_summary_merge () =
  let xs = Array.init 100 (fun i -> float_of_int (i * i) /. 7.0) in
  let whole = Summary.create () in
  Array.iter (Summary.add whole) xs;
  let left = Summary.create () and right = Summary.create () in
  Array.iteri (fun i x -> Summary.add (if i < 37 then left else right) x) xs;
  let merged = Summary.stats (Summary.merge left right) in
  let direct = Summary.stats whole in
  check_int "count" direct.count merged.count;
  check_float "mean" ~eps:1e-9 direct.mean merged.mean;
  check_float "variance" ~eps:1e-7 direct.variance merged.variance;
  check_float "min" direct.min merged.min;
  check_float "max" direct.max merged.max

let test_summary_merge_empty () =
  let a = Summary.create () in
  Summary.add a 1.0;
  Summary.add a 3.0;
  let e = Summary.create () in
  let m1 = Summary.stats (Summary.merge a e) in
  let m2 = Summary.stats (Summary.merge e a) in
  check_float "merge right-empty mean" 2.0 m1.mean;
  check_float "merge left-empty mean" 2.0 m2.mean;
  check_int "counts" 2 m1.count;
  check_int "counts" 2 m2.count

let test_summary_pp () =
  let s = Summary.of_array [| 1.0; 2.0; 3.0 |] in
  let str = Format.asprintf "%a" Summary.pp s in
  check_bool "pp nonempty" true (String.length str > 10);
  (* A single trial has no spread estimate: render as unavailable, not
     as a confidently exact "± 0.00". *)
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let single = Format.asprintf "%a" Summary.pp (Summary.of_array [| 42.0 |]) in
  check_bool "pp single-trial shows n/a" true (contains ~sub:"n/a" single);
  check_bool "pp single-trial hides fake zero width" false (contains ~sub:"0.00" single)

(* --- Quantile --- *)

let test_quantiles_known () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Quantile.median xs);
  check_float "q0" 1.0 (Quantile.quantile xs 0.0);
  check_float "q1" 5.0 (Quantile.quantile xs 1.0);
  check_float "q25" 2.0 (Quantile.quantile xs 0.25);
  check_float "interpolated" 3.5 (Quantile.quantile xs 0.625);
  check_float "iqr" 2.0 (Quantile.iqr xs)

let test_quantile_unsorted_input () =
  let xs = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  check_float "median of unsorted" 3.0 (Quantile.median xs)

let test_quantile_even_count () =
  check_float "median interpolates" 2.5 (Quantile.median [| 1.0; 2.0; 3.0; 4.0 |])

let test_quantile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile: empty sample") (fun () ->
      ignore (Quantile.median [||]));
  Alcotest.check_raises "bad q" (Invalid_argument "Quantile: q must be in [0, 1]") (fun () ->
      ignore (Quantile.quantile [| 1.0 |] 1.5))

let test_quantile_nan_ordering () =
  (* Float.compare gives nan a fixed place (below every number), so a
     sample containing nan still sorts deterministically. *)
  let xs = [| nan; 1.0; 3.0; 2.0 |] in
  check_float "q1 ignores the low-sorted nan" 3.0 (Quantile.quantile xs 1.0);
  check_bool "q0 lands on the nan" true (Float.is_nan (Quantile.quantile xs 0.0))

let test_quantiles_batch () =
  let xs = Array.init 101 float_of_int in
  match Quantile.quantiles xs [ 0.1; 0.5; 0.9 ] with
  | [ a; b; c ] ->
      check_float "q10" 10.0 a;
      check_float "q50" 50.0 b;
      check_float "q90" 90.0 c
  | _ -> Alcotest.fail "expected three quantiles"

(* --- Regress --- *)

let test_fit_exact_line () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.5 *. x) -. 1.0) xs in
  let f = Regress.fit xs ys in
  check_float "slope" 2.5 f.slope;
  check_float "intercept" (-1.0) f.intercept;
  check_float "r2" 1.0 f.r2;
  check_float "eval" 11.5 (Regress.eval f 5.0)

let test_fit_loglog_power_law () =
  let xs = Array.init 10 (fun i -> float_of_int (i + 2)) in
  let ys = Array.map (fun x -> 3.0 *. (x ** 1.7)) xs in
  let f = Regress.fit_loglog xs ys in
  check_float "exponent recovered" ~eps:1e-9 1.7 f.slope;
  check_float "r2" ~eps:1e-9 1.0 f.r2

let test_fit_polylog () =
  let ns = Array.init 8 (fun i -> 2.0 ** float_of_int (i + 4)) in
  let ys = Array.map (fun n -> 5.0 *. (log n ** 3.0)) ns in
  let f = Regress.fit_exponent_vs_log ns ys in
  check_float "polylog exponent" ~eps:1e-9 3.0 f.slope

let test_fit_noise_r2 () =
  let xs = Array.init 50 (fun i -> float_of_int i) in
  let rng = Rng.create 12 in
  let ys = Array.map (fun x -> x +. (10.0 *. (Rng.float01 rng -. 0.5))) xs in
  let f = Regress.fit xs ys in
  check_bool "slope near 1" true (Float.abs (f.slope -. 1.0) < 0.1);
  check_bool "r2 < 1 with noise" true (f.r2 < 1.0)

let test_fit_constant_y_r2_nan () =
  (* Zero variance in y makes r2 = 0/0: the fit is exact but explains
     nothing, so goodness-of-fit is undefined — it must not read 1.0. *)
  let f = Regress.fit [| 1.0; 2.0; 3.0 |] [| 5.0; 5.0; 5.0 |] in
  check_float "slope" 0.0 f.slope;
  check_float "intercept" 5.0 f.intercept;
  check_bool "r2 is nan on constant y" true (Float.is_nan f.r2)

let test_fit_errors () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Regress.fit: length mismatch") (fun () ->
      ignore (Regress.fit [| 1.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "too few" (Invalid_argument "Regress.fit: need at least 2 points")
    (fun () -> ignore (Regress.fit [| 1.0 |] [| 1.0 |]));
  Alcotest.check_raises "zero variance" (Invalid_argument "Regress.fit: zero variance in x")
    (fun () -> ignore (Regress.fit [| 2.0; 2.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "negative loglog"
    (Invalid_argument "Regress.fit_loglog: coordinates must be positive") (fun () ->
      ignore (Regress.fit_loglog [| 1.0; -2.0 |] [| 1.0; 2.0 |]))

(* --- Bootstrap --- *)

let test_bootstrap_mean_interval () =
  let rng = Rng.create 77 in
  let xs = Array.init 400 (fun _ -> 10.0 +. Rng.float01 rng) in
  let itv = Bootstrap.ci_mean xs (Rng.create 5) in
  check_bool "lo < hi" true (itv.lo < itv.hi);
  check_bool "contains true mean 10.5" true (itv.lo < 10.5 && 10.5 < itv.hi);
  check_bool "narrow for n=400" true (itv.hi -. itv.lo < 0.2)

let test_bootstrap_median () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  let itv = Bootstrap.ci_median xs (Rng.create 6) in
  check_bool "median interval around 50" true (itv.lo <= 50.0 && 50.0 <= itv.hi)

let test_bootstrap_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Bootstrap.ci: empty sample") (fun () ->
      ignore (Bootstrap.ci_mean [||] (Rng.create 1)));
  Alcotest.check_raises "confidence" (Invalid_argument "Bootstrap.ci: confidence must be in (0, 1)")
    (fun () -> ignore (Bootstrap.ci_mean ~confidence:1.0 [| 1.0 |] (Rng.create 1)))

(* --- Histogram --- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 2.5; 9.9; -3.0; 42.0 ];
  let c = Histogram.counts h in
  (* Out-of-range observations are tracked separately — they must not
     contaminate the edge bins. *)
  check_int "bin 0 (in-range only)" 2 c.(0);
  check_int "bin 1" 1 c.(1);
  check_int "bin 4 (in-range only)" 1 c.(4);
  check_int "underflow" 1 (Histogram.underflow h);
  check_int "overflow" 1 (Histogram.overflow h);
  check_int "total still counts everything" 6 (Histogram.total h);
  let lo, hi = Histogram.bin_bounds h 1 in
  check_float "bin bounds lo" 2.0 lo;
  check_float "bin bounds hi" 4.0 hi

let test_histogram_of_array_and_render () =
  let h = Histogram.of_array ~bins:4 [| 1.0; 2.0; 3.0; 4.0 |] in
  check_int "total" 4 (Histogram.total h);
  check_int "no underflow from of_array" 0 (Histogram.underflow h);
  check_int "no overflow from of_array" 0 (Histogram.overflow h);
  let r = Histogram.render h in
  check_bool "render has bars" true (String.contains r '#');
  check_bool "no out-of-range lines" false
    (String.split_on_char '\n' r |> List.exists (fun l -> String.length l > 0 && l.[0] = '('))

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_histogram_render_out_of_range () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:2 in
  List.iter (Histogram.add h) [ -1.0; 5.0; 12.0; 99.0 ];
  let r = Histogram.render h in
  check_bool "underflow line" true (contains_substring r "(-inf,");
  check_bool "overflow line" true (contains_substring r "+inf)")

let test_histogram_errors () =
  Alcotest.check_raises "bins" (Invalid_argument "Histogram.create: bins must be >= 1") (fun () ->
      ignore (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0));
  Alcotest.check_raises "range" (Invalid_argument "Histogram.create: need hi > lo") (fun () ->
      ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~bins:3));
  Alcotest.check_raises "empty" (Invalid_argument "Histogram.of_array: empty sample") (fun () ->
      ignore (Histogram.of_array [||]))

(* --- Table --- *)

let test_table_render () =
  let t = Table.create [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "23456" ];
  let out = Table.render t in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: row1 :: row2 :: _ ->
      check_bool "header has name" true (String.length header > 0);
      check_bool "rule dashes" true (String.contains rule '-');
      (* Right-aligned numbers: widths equal across rows. *)
      check_int "aligned widths" (String.length row1) (String.length row2)
  | _ -> Alcotest.fail "expected at least 4 lines");
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Table.add_row: expected 2 cells, got 1") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_rule () =
  let t = Table.create [ ("a", Table.Left) ] in
  Table.add_row t [ "x" ];
  Table.add_rule t;
  Table.add_row t [ "y" ];
  let out = Table.render t in
  let dash_lines =
    List.filter (fun l -> String.length l > 0 && l.[1] = '-') (String.split_on_char '\n' out)
  in
  check_int "two rules (header + explicit)" 2 (List.length dash_lines)

let test_table_csv () =
  let t = Table.create [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "plain"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "with,comma"; "quote\"inside" ];
  Alcotest.(check string) "csv rendering"
    "name,value\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n" (Table.render_csv t)

let test_cells () =
  Alcotest.(check string) "integer float" "12" (Table.cell_f 12.0);
  Alcotest.(check string) "small float" "3.142" (Table.cell_f 3.14159);
  Alcotest.(check string) "mid float" "31.4" (Table.cell_f 31.4159);
  Alcotest.(check string) "big float" "31416" (Table.cell_f 31415.9);
  Alcotest.(check string) "nan" "-" (Table.cell_f nan);
  Alcotest.(check string) "int" "7" (Table.cell_i 7)

(* --- properties --- *)

let summary_matches_direct_test =
  QCheck2.Test.make ~name:"Welford matches direct computation" ~count:100
    QCheck2.Gen.(list_size (int_range 2 200) (float_bound_inclusive 1000.0))
    (fun xs ->
      let a = Array.of_list xs in
      let s = Summary.of_array a in
      let n = float_of_int (Array.length a) in
      let mean = Array.fold_left ( +. ) 0.0 a /. n in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a /. (n -. 1.0)
      in
      Float.abs (s.mean -. mean) < 1e-6 && Float.abs (s.variance -. var) < 1e-4)

let quantile_bounds_test =
  QCheck2.Test.make ~name:"quantiles stay within sample range" ~count:100
    QCheck2.Gen.(
      pair (list_size (int_range 1 50) (float_bound_inclusive 100.0)) (float_bound_inclusive 1.0))
    (fun (xs, q) ->
      let a = Array.of_list xs in
      let v = Quantile.quantile a q in
      let lo = Array.fold_left Float.min a.(0) a and hi = Array.fold_left Float.max a.(0) a in
      v >= lo -. 1e-12 && v <= hi +. 1e-12)

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "known values" `Quick test_summary_known;
          Alcotest.test_case "empty/single" `Quick test_summary_empty_and_single;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          Alcotest.test_case "merge empty" `Quick test_summary_merge_empty;
          Alcotest.test_case "pp" `Quick test_summary_pp;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "known" `Quick test_quantiles_known;
          Alcotest.test_case "unsorted" `Quick test_quantile_unsorted_input;
          Alcotest.test_case "even count" `Quick test_quantile_even_count;
          Alcotest.test_case "errors" `Quick test_quantile_errors;
          Alcotest.test_case "nan ordering" `Quick test_quantile_nan_ordering;
          Alcotest.test_case "batch" `Quick test_quantiles_batch;
        ] );
      ( "regress",
        [
          Alcotest.test_case "exact line" `Quick test_fit_exact_line;
          Alcotest.test_case "power law" `Quick test_fit_loglog_power_law;
          Alcotest.test_case "polylog" `Quick test_fit_polylog;
          Alcotest.test_case "noise" `Quick test_fit_noise_r2;
          Alcotest.test_case "constant y" `Quick test_fit_constant_y_r2_nan;
          Alcotest.test_case "errors" `Quick test_fit_errors;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "mean interval" `Quick test_bootstrap_mean_interval;
          Alcotest.test_case "median interval" `Quick test_bootstrap_median;
          Alcotest.test_case "errors" `Quick test_bootstrap_errors;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "of_array/render" `Quick test_histogram_of_array_and_render;
          Alcotest.test_case "out-of-range render" `Quick test_histogram_render_out_of_range;
          Alcotest.test_case "errors" `Quick test_histogram_errors;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "rules" `Quick test_table_rule;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "cells" `Quick test_cells;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest summary_matches_direct_test;
          QCheck_alcotest.to_alcotest quantile_bounds_test;
        ] );
    ]
