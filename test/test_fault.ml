(* Fault-tolerance layer: per-trial failure isolation, bounded retry,
   JSONL checkpoint journals, cooperative cancellation and deadlines.
   The headline property mirrors the CLI acceptance test: a sweep that
   is interrupted and resumed produces bit-identical results to an
   uninterrupted run with the same seed. *)

module Pool = Cobra_parallel.Pool
module Montecarlo = Cobra_parallel.Montecarlo
module Journal = Cobra_parallel.Journal
module Rng = Cobra_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tmp_journal =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cobra-test-journal-%d-%d.jsonl" (Unix.getpid ()) !counter)

let with_tmp_journal f =
  let path = tmp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ---------- failure isolation and retry ---------- *)

let test_failure_isolation () =
  Pool.with_pool ~num_domains:2 (fun pool ->
      let work ~trial rng =
        if trial = 7 then failwith "trial 7 crashes";
        Rng.float01 rng
      in
      let results = Montecarlo.run_results ~pool ~master_seed:5 ~trials:20 work in
      let reference =
        Montecarlo.run_serial ~master_seed:5 ~trials:20 (fun ~trial rng ->
            ignore trial;
            Rng.float01 rng)
      in
      Array.iteri
        (fun trial r ->
          match r with
          | Ok v ->
              check_bool "only trial 7 fails" true (trial <> 7);
              Alcotest.(check (float 0.0))
                (Printf.sprintf "trial %d unaffected" trial)
                reference.(trial) v
          | Error (f : Montecarlo.failure) ->
              check_int "failing trial" 7 trial;
              check_int "no retries by default" 1 f.attempts;
              check_bool "exception recorded" true (match f.exn with Failure _ -> true | _ -> false))
        results)

let test_run_reraises_first_failure () =
  Printexc.record_backtrace true;
  Pool.with_pool ~num_domains:0 (fun pool ->
      let raised =
        try
          ignore
            (Montecarlo.run ~pool ~master_seed:5 ~trials:10 (fun ~trial rng ->
                 ignore (Rng.float01 rng);
                 if trial = 3 then failwith "boom";
                 0.0));
          false
        with Failure msg -> msg = "boom"
      in
      check_bool "run re-raises the failure" true raised)

let test_retry_recovers_flaky_trial () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let attempts = Array.make 10 0 in
      let work ~trial rng =
        attempts.(trial) <- attempts.(trial) + 1;
        (* Trial 4 fails on its first attempt only. *)
        if trial = 4 && attempts.(trial) = 1 then failwith "flaky";
        Rng.float01 rng
      in
      let results = Montecarlo.run_results ~retries:1 ~pool ~master_seed:9 ~trials:10 work in
      let reference =
        Montecarlo.run_serial ~master_seed:9 ~trials:10 (fun ~trial rng ->
            ignore trial;
            Rng.float01 rng)
      in
      check_int "trial 4 ran twice" 2 attempts.(4);
      (match results.(4) with
      | Ok v ->
          (* The retry reuses the identical per-trial PRNG, so the
             recovered value matches an uninterrupted run bitwise. *)
          Alcotest.(check (float 0.0)) "retried value deterministic" reference.(4) v
      | Error _ -> Alcotest.fail "retry should have recovered trial 4");
      Array.iteri
        (fun trial n -> if trial <> 4 then check_int "one attempt elsewhere" 1 n)
        attempts)

let test_retry_exhaustion_counts_attempts () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let results =
        Montecarlo.run_results ~retries:2 ~pool ~master_seed:1 ~trials:3 (fun ~trial rng ->
            ignore (Rng.float01 rng);
            if trial = 1 then failwith "always fails";
            trial)
      in
      match results.(1) with
      | Error (f : Montecarlo.failure) -> check_int "1 + 2 retries" 3 f.attempts
      | Ok _ -> Alcotest.fail "trial 1 must fail")

(* ---------- journal: checkpoint, replay, resume ---------- *)

let test_journal_replay_skips_execution () =
  with_tmp_journal (fun path ->
      let codec = Journal.float_ in
      let work ~trial rng =
        ignore trial;
        Rng.float01 rng
      in
      let first =
        Pool.with_pool ~num_domains:2 (fun pool ->
            let j = Journal.create path in
            Journal.set_experiment j "unit";
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () -> Montecarlo.run ~codec ~journal:j ~pool ~master_seed:42 ~trials:50 work)
        )
      in
      (* Resume: every trial is checkpointed, so a body that would crash
         if executed proves replay never calls it. *)
      let second =
        Pool.with_pool ~num_domains:2 (fun pool ->
            let j = Journal.load path in
            check_int "all checkpoints loaded" 50 (Journal.loaded j);
            Journal.set_experiment j "unit";
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () ->
                let r =
                  Montecarlo.run ~codec ~journal:j ~pool ~master_seed:42 ~trials:50
                    (fun ~trial _ -> Alcotest.failf "trial %d executed despite checkpoint" trial)
                in
                check_int "all trials replayed" 50 (Journal.replayed j);
                check_int "nothing appended" 0 (Journal.appended j);
                r))
      in
      Alcotest.(check (array (float 0.0))) "replay is bit-identical" first second)

let test_journal_partial_resume_bit_identical () =
  with_tmp_journal (fun path ->
      let codec = Journal.(pair float_ int_) in
      let work ~trial rng = (Rng.float01 rng, trial * trial) in
      let baseline =
        Pool.with_pool ~num_domains:0 (fun pool ->
            Montecarlo.run ~pool ~master_seed:7 ~trials:40 work)
      in
      (* Interrupt a journaled sweep partway via a cancel token tripped
         from inside a trial body. *)
      Pool.with_pool ~num_domains:0 (fun pool ->
          let j = Journal.create path in
          Journal.set_experiment j "unit";
          let cancel = Pool.Cancel.create () in
          (try
             ignore
               (Montecarlo.run ~codec ~journal:j ~cancel ~pool ~master_seed:7 ~trials:40
                  (fun ~trial rng ->
                    if trial = 3 then Pool.Cancel.cancel cancel;
                    work ~trial rng));
             Alcotest.fail "expected Interrupted"
           with Montecarlo.Interrupted { reason = `Cancelled; completed; total } ->
             check_int "total" 40 total;
             check_bool "some trials done" true (completed > 0);
             check_bool "not all trials done" true (completed < 40);
             check_int "completed trials checkpointed" completed (Journal.appended j));
          Journal.close j);
      (* Resume from the partial journal and compare bitwise. *)
      let resumed =
        Pool.with_pool ~num_domains:2 (fun pool ->
            let j = Journal.load path in
            check_bool "partial journal loaded" true (Journal.loaded j > 0);
            Journal.set_experiment j "unit";
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () -> Montecarlo.run ~codec ~journal:j ~pool ~master_seed:7 ~trials:40 work))
      in
      Alcotest.(check bool) "kill + resume = uninterrupted" true (compare baseline resumed = 0))

let test_journal_tolerates_truncated_tail () =
  with_tmp_journal (fun path ->
      let codec = Journal.float_ in
      let work ~trial rng =
        ignore trial;
        Rng.float01 rng
      in
      let baseline =
        Pool.with_pool ~num_domains:0 (fun pool ->
            let j = Journal.create path in
            Journal.set_experiment j "unit";
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () -> Montecarlo.run ~codec ~journal:j ~pool ~master_seed:3 ~trials:30 work))
      in
      (* Simulate a hard kill mid-write: keep 10 full lines plus half of
         the 11th. *)
      let ic = open_in_bin path in
      let all = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let lines = String.split_on_char '\n' all in
      let keep = List.filteri (fun i _ -> i < 10) lines in
      let half = String.sub (List.nth lines 10) 0 (String.length (List.nth lines 10) / 2) in
      let oc = open_out_bin path in
      output_string oc (String.concat "\n" keep ^ "\n" ^ half);
      close_out oc;
      let resumed =
        Pool.with_pool ~num_domains:0 (fun pool ->
            let j = Journal.load path in
            check_int "full lines recovered" 10 (Journal.loaded j);
            check_int "torn line skipped, not fatal" 1 (Journal.malformed j);
            Journal.set_experiment j "unit";
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () -> Montecarlo.run ~codec ~journal:j ~pool ~master_seed:3 ~trials:30 work))
      in
      Alcotest.(check (array (float 0.0))) "resume after torn write" baseline resumed)

let test_journal_failures_not_replayed () =
  with_tmp_journal (fun path ->
      let codec = Journal.int_ in
      (* First run: trial 2 fails and is journaled as an error line. *)
      Pool.with_pool ~num_domains:0 (fun pool ->
          let j = Journal.create path in
          Journal.set_experiment j "unit";
          let results =
            Montecarlo.run_results ~codec ~journal:j ~pool ~master_seed:11 ~trials:5
              (fun ~trial rng ->
                ignore (Rng.float01 rng);
                if trial = 2 then failwith "transient outage";
                trial * 10)
          in
          check_bool "failure recorded" true (Result.is_error results.(2));
          Journal.close j);
      (* Resume: the four ok trials replay, the failed one re-executes
         (and succeeds this time). *)
      Pool.with_pool ~num_domains:0 (fun pool ->
          let j = Journal.load path in
          check_int "only ok lines replayable" 4 (Journal.loaded j);
          Journal.set_experiment j "unit";
          let executed = ref [] in
          let results =
            Montecarlo.run ~codec ~journal:j ~pool ~master_seed:11 ~trials:5 (fun ~trial rng ->
                ignore (Rng.float01 rng);
                executed := trial :: !executed;
                trial * 10)
          in
          Alcotest.(check (list int)) "only the failed trial re-ran" [ 2 ] !executed;
          Alcotest.(check (array int)) "ensemble completed" [| 0; 10; 20; 30; 40 |] results;
          Journal.close j))

let test_journal_address_mismatch_is_fresh_run () =
  with_tmp_journal (fun path ->
      let codec = Journal.int_ in
      let work ~trial rng =
        ignore rng;
        trial
      in
      Pool.with_pool ~num_domains:0 (fun pool ->
          let j = Journal.create path in
          Journal.set_experiment j "unit";
          ignore (Montecarlo.run ~codec ~journal:j ~pool ~master_seed:1 ~trials:5 work);
          Journal.close j);
      Pool.with_pool ~num_domains:0 (fun pool ->
          let j = Journal.load path in
          Journal.set_experiment j "unit";
          (* Different master seed → different address → no replays. *)
          ignore (Montecarlo.run ~codec ~journal:j ~pool ~master_seed:2 ~trials:5 work);
          check_int "wrong-seed checkpoints ignored" 0 (Journal.replayed j);
          Journal.close j))

(* ---------- cancellation / deadline at the Monte-Carlo layer ---------- *)

let test_deadline_interrupt_and_resume () =
  with_tmp_journal (fun path ->
      let codec = Journal.float_ in
      let slow_once = ref true in
      Pool.with_pool ~num_domains:0 (fun pool ->
          let j = Journal.create path in
          Journal.set_experiment j "unit";
          (try
             ignore
               (Montecarlo.run ~codec ~journal:j ~deadline_s:0.05 ~pool ~master_seed:13
                  ~trials:1000 (fun ~trial rng ->
                    if !slow_once then begin
                      slow_once := false;
                      Unix.sleepf 0.1
                    end;
                    ignore trial;
                    Rng.float01 rng));
             Alcotest.fail "expected a deadline interrupt"
           with Montecarlo.Interrupted { reason = `Deadline; completed; total } ->
             check_int "total" 1000 total;
             check_bool "partial progress" true (completed > 0 && completed < 1000));
          Journal.close j);
      let baseline =
        Pool.with_pool ~num_domains:0 (fun pool ->
            Montecarlo.run ~pool ~master_seed:13 ~trials:1000 (fun ~trial rng ->
                ignore trial;
                Rng.float01 rng))
      in
      let resumed =
        Pool.with_pool ~num_domains:0 (fun pool ->
            let j = Journal.load path in
            Journal.set_experiment j "unit";
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () ->
                Montecarlo.run ~codec ~journal:j ~pool ~master_seed:13 ~trials:1000
                  (fun ~trial rng ->
                    ignore trial;
                    Rng.float01 rng)))
      in
      Alcotest.(check (array (float 0.0))) "deadline + resume = uninterrupted" baseline resumed)

let test_completed_sweep_ignores_cancel () =
  (* A token tripped after the last trial finishes must not raise. *)
  Pool.with_pool ~num_domains:0 (fun pool ->
      let cancel = Pool.Cancel.create () in
      let results =
        Montecarlo.run ~cancel ~pool ~master_seed:1 ~trials:10 (fun ~trial rng ->
            if trial = 9 then Pool.Cancel.cancel cancel;
            Rng.float01 rng)
      in
      check_int "sweep completed" 10 (Array.length results))

(* ---------- ambient context ---------- *)

let test_ambient_context_applies () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let attempts = ref 0 in
      let v =
        Montecarlo.with_context ~retries:1 (fun () ->
            Montecarlo.run ~pool ~master_seed:21 ~trials:1 (fun ~trial rng ->
                ignore trial;
                incr attempts;
                if !attempts = 1 then failwith "flaky";
                Rng.float01 rng))
      in
      check_int "ambient retries picked up" 2 !attempts;
      check_int "recovered" 1 (Array.length v))

let test_ambient_context_restored () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      Montecarlo.with_context ~retries:5 (fun () -> ());
      (* Outside the context the default (no retries) applies again. *)
      let attempts = ref 0 in
      let failed =
        try
          ignore
            (Montecarlo.run ~pool ~master_seed:21 ~trials:1 (fun ~trial rng ->
                 ignore trial;
                 incr attempts;
                 if !attempts = 1 then failwith "flaky";
                 Rng.float01 rng));
          false
        with Failure _ -> true
      in
      check_bool "no ambient retries after the context" true failed;
      check_int "single attempt" 1 !attempts)

(* ---------- experiments layer: estimator under a journal ---------- *)

let test_estimator_resume_bit_identical () =
  with_tmp_journal (fun path ->
      let g = Cobra_graph.Gen.petersen () in
      let run journal =
        Pool.with_pool ~num_domains:2 (fun pool ->
            match journal with
            | None -> Cobra_core.Estimate.infection_time ~pool ~master_seed:2017 ~trials:32 ~source:0 g
            | Some j ->
                Montecarlo.with_context ~journal:j (fun () ->
                    Cobra_core.Estimate.infection_time ~pool ~master_seed:2017 ~trials:32 ~source:0 g))
      in
      let baseline = run None in
      (* Journal a full run, truncate it to 12 checkpoints to simulate a
         kill, then resume through the ambient context. *)
      let j = Journal.create path in
      Journal.set_experiment j "e-unit";
      ignore (run (Some j));
      Journal.close j;
      let ic = open_in_bin path in
      let lines = String.split_on_char '\n' (really_input_string ic (in_channel_length ic)) in
      close_in ic;
      let keep = List.filteri (fun i _ -> i < 12) lines in
      let oc = open_out_bin path in
      List.iter (fun l -> output_string oc (l ^ "\n")) keep;
      close_out oc;
      let j = Journal.load path in
      check_int "truncated journal" 12 (Journal.loaded j);
      Journal.set_experiment j "e-unit";
      let resumed = run (Some j) in
      check_int "trials replayed through the estimator" 12 (Journal.replayed j);
      Journal.close j;
      (* [compare], not [=]: BIPS results carry [mean_transmissions = nan],
         and polymorphic [=] is false on nan. *)
      check_bool "estimator results bit-identical after resume" true
        (compare baseline resumed = 0))

(* ---------- reproducible manifest timestamps ---------- *)

let test_source_date_epoch () =
  let module Timer = Cobra_obs.Timer in
  Unix.putenv "SOURCE_DATE_EPOCH" "1500000000";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SOURCE_DATE_EPOCH" "")
    (fun () ->
      Alcotest.(check (float 0.0)) "stamp pinned" 1_500_000_000.0 (Timer.stamp ());
      Alcotest.(check string) "iso8601 of the pin" "2017-07-14T02:40:00Z"
        (Timer.iso8601 (Timer.stamp ()));
      (* Two manifests rendered under the pin are byte-identical. *)
      let render () =
        Cobra_obs.Json.to_string_pretty
          (Cobra_obs.Manifest.to_json
             (Cobra_obs.Manifest.create ~experiment:"unit" ~master_seed:1 ~scale:"quick"
                ~domains:2 ()))
      in
      Alcotest.(check string) "manifests reproducible" (render ()) (render ()));
  (* An unset/empty override falls back to the live clock. *)
  check_bool "live clock after unset" true (Timer.stamp () > 1.6e9)

let () =
  Alcotest.run "fault"
    [
      ( "isolation",
        [
          Alcotest.test_case "failing trial isolated" `Quick test_failure_isolation;
          Alcotest.test_case "run re-raises" `Quick test_run_reraises_first_failure;
          Alcotest.test_case "retry recovers" `Quick test_retry_recovers_flaky_trial;
          Alcotest.test_case "retry exhaustion" `Quick test_retry_exhaustion_counts_attempts;
        ] );
      ( "journal",
        [
          Alcotest.test_case "replay skips execution" `Quick test_journal_replay_skips_execution;
          Alcotest.test_case "partial resume bit-identical" `Quick
            test_journal_partial_resume_bit_identical;
          Alcotest.test_case "torn tail tolerated" `Quick test_journal_tolerates_truncated_tail;
          Alcotest.test_case "failures not replayed" `Quick test_journal_failures_not_replayed;
          Alcotest.test_case "address mismatch = fresh run" `Quick
            test_journal_address_mismatch_is_fresh_run;
        ] );
      ( "interrupt",
        [
          Alcotest.test_case "deadline interrupt + resume" `Quick test_deadline_interrupt_and_resume;
          Alcotest.test_case "late cancel ignored" `Quick test_completed_sweep_ignores_cancel;
        ] );
      ( "context",
        [
          Alcotest.test_case "ambient applies" `Quick test_ambient_context_applies;
          Alcotest.test_case "ambient restored" `Quick test_ambient_context_restored;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "estimator resume bit-identical" `Quick
            test_estimator_resume_bit_identical;
        ] );
      ("manifest", [ Alcotest.test_case "SOURCE_DATE_EPOCH" `Quick test_source_date_epoch ]);
    ]
