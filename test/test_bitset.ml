(* Tests for Bitset: unit cases plus a qcheck model check against
   Stdlib's Set over the same operation sequences. *)

module Bitset = Cobra_bitset.Bitset
module Rng = Cobra_prng.Rng
module IntSet = Set.Make (Int)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_empty () =
  let s = Bitset.create 10 in
  check_int "cardinal" 0 (Bitset.cardinal s);
  check_bool "is_empty" true (Bitset.is_empty s);
  check_int "capacity" 10 (Bitset.capacity s);
  check_bool "mem" false (Bitset.mem s 3);
  Alcotest.(check (list int)) "to_list" [] (Bitset.to_list s);
  check_bool "choose" true (Bitset.choose s = None)

let test_add_remove () =
  let s = Bitset.create 100 in
  Bitset.add s 5;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  check_int "cardinal after adds" 4 (Bitset.cardinal s);
  check_bool "mem 63 (word boundary)" true (Bitset.mem s 63);
  check_bool "mem 64" true (Bitset.mem s 64);
  Bitset.add s 5;
  check_int "idempotent add" 4 (Bitset.cardinal s);
  Bitset.remove s 5;
  check_bool "removed" false (Bitset.mem s 5);
  check_int "cardinal after remove" 3 (Bitset.cardinal s);
  Bitset.remove s 5;
  check_int "idempotent remove" 3 (Bitset.cardinal s)

let test_word_boundaries () =
  (* Bits 62 (sign bit of word 0), 63 (first bit of word 1) and friends. *)
  let s = Bitset.create 130 in
  List.iter (Bitset.add s) [ 0; 61; 62; 63; 125; 126; 129 ];
  Alcotest.(check (list int)) "sorted members" [ 0; 61; 62; 63; 125; 126; 129 ]
    (Bitset.to_list s);
  check_int "cardinal" 7 (Bitset.cardinal s)

let test_fill_clear () =
  List.iter
    (fun cap ->
      let s = Bitset.create cap in
      Bitset.fill s;
      check_int (Printf.sprintf "fill cardinal (cap %d)" cap) cap (Bitset.cardinal s);
      for i = 0 to cap - 1 do
        if not (Bitset.mem s i) then Alcotest.failf "fill: missing %d at cap %d" i cap
      done;
      Bitset.clear s;
      check_int "clear cardinal" 0 (Bitset.cardinal s))
    [ 1; 62; 63; 64; 126; 127; 200 ]

let test_ops () =
  let a = Bitset.of_list 20 [ 1; 2; 3; 10 ] in
  let b = Bitset.of_list 20 [ 2; 3; 4; 19 ] in
  let u = Bitset.copy a in
  Bitset.union_into ~into:u b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 10; 19 ] (Bitset.to_list u);
  let i = Bitset.copy a in
  Bitset.inter_into ~into:i b;
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Bitset.to_list i);
  let d = Bitset.copy a in
  Bitset.diff_into ~into:d b;
  Alcotest.(check (list int)) "diff" [ 1; 10 ] (Bitset.to_list d);
  check_bool "intersects" true (Bitset.intersects a b);
  check_bool "no intersects" false (Bitset.intersects d i)

let test_subset_equal () =
  let a = Bitset.of_list 10 [ 1; 2 ] in
  let b = Bitset.of_list 10 [ 1; 2; 3 ] in
  check_bool "a subset b" true (Bitset.subset a b);
  check_bool "b not subset a" false (Bitset.subset b a);
  check_bool "a subset a" true (Bitset.subset a a);
  check_bool "not equal" false (Bitset.equal a b);
  check_bool "equal to copy" true (Bitset.equal a (Bitset.copy a))

let test_blit () =
  let a = Bitset.of_list 10 [ 1; 2 ] in
  let b = Bitset.of_list 10 [ 7 ] in
  Bitset.blit ~src:a ~dst:b;
  check_bool "blit equal" true (Bitset.equal a b);
  Bitset.add b 9;
  check_bool "blit decoupled" false (Bitset.equal a b)

let test_choose_fold () =
  let s = Bitset.of_list 50 [ 42; 7; 13 ] in
  check_bool "choose = min" true (Bitset.choose s = Some 7);
  check_int "fold sum" 62 (Bitset.fold (fun i acc -> i + acc) s 0);
  Alcotest.(check (array int)) "to_array" [| 7; 13; 42 |] (Bitset.to_array s)

let test_random_member () =
  let s = Bitset.of_list 200 [ 3; 64; 126; 190 ] in
  let rng = Rng.create 7 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 4000 do
    let v = Bitset.random_member s rng in
    check_bool "member" true (Bitset.mem s v);
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  check_int "all members drawn" 4 (Hashtbl.length counts);
  Hashtbl.iter
    (fun v c ->
      check_bool (Printf.sprintf "member %d frequency %d sane" v c) true (c > 700 && c < 1300))
    counts;
  let empty = Bitset.create 5 in
  Alcotest.check_raises "empty random_member"
    (Invalid_argument "Bitset.random_member: empty set") (fun () ->
      ignore (Bitset.random_member empty rng))

let test_errors () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: element 10 out of range [0, 10)")
    (fun () -> Bitset.add s 10);
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: element -1 out of range [0, 10)")
    (fun () -> ignore (Bitset.mem s (-1)));
  let t = Bitset.create 11 in
  Alcotest.check_raises "capacity mismatch"
    (Invalid_argument "Bitset: operands have different capacities") (fun () ->
      Bitset.union_into ~into:s t);
  Alcotest.check_raises "negative capacity" (Invalid_argument "Bitset.create: negative capacity")
    (fun () -> ignore (Bitset.create (-1)))

(* The multiply-shift word addressing is only exact below 2^30, so
   [create] caps capacity there.  Exercise both sides of the boundary:
   the cap itself must work (including the last element, whose word/bit
   decomposition is the largest the reciprocal ever sees), one past it
   must raise an error naming the cap and the requested capacity. *)
let test_capacity_cap () =
  let cap = 1 lsl 30 in
  let s = Bitset.create cap in
  check_int "capacity at the cap" cap (Bitset.capacity s);
  Bitset.add s (cap - 1);
  Bitset.add s 0;
  check_bool "last element addressable" true (Bitset.mem s (cap - 1));
  check_int "cardinal" 2 (Bitset.cardinal s);
  Alcotest.check_raises "one past the cap"
    (Invalid_argument
       (Printf.sprintf
          "Bitset.create: capacity %d exceeds the %d (2^30) addressing limit of the \
           multiply-shift word indexing"
          (cap + 1) cap))
    (fun () -> ignore (Bitset.create (cap + 1)))

let test_pp () =
  let s = Bitset.of_list 10 [ 3; 1; 7 ] in
  Alcotest.(check string) "pp" "{1, 3, 7}" (Format.asprintf "%a" Bitset.pp s)

(* --- Model check against Set.Make(Int) --- *)

type op = Add of int | Remove of int

let op_gen cap =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Add (i mod cap)) (int_bound (cap - 1));
        map (fun i -> Remove (i mod cap)) (int_bound (cap - 1));
      ])

let model_test =
  QCheck2.Test.make ~name:"bitset agrees with Set over op sequences" ~count:200
    QCheck2.Gen.(pair (int_range 1 200) (list_size (int_bound 300) (op_gen 200)))
    (fun (cap, ops) ->
      let cap = max cap 1 in
      let ops = List.map (function Add i -> Add (i mod cap) | Remove i -> Remove (i mod cap)) ops in
      let bs = Bitset.create cap in
      let model = ref IntSet.empty in
      List.iter
        (function
          | Add i ->
              Bitset.add bs i;
              model := IntSet.add i !model
          | Remove i ->
              Bitset.remove bs i;
              model := IntSet.remove i !model)
        ops;
      Bitset.cardinal bs = IntSet.cardinal !model
      && Bitset.to_list bs = IntSet.elements !model
      && IntSet.for_all (fun i -> Bitset.mem bs i) !model)

let binop_test =
  QCheck2.Test.make ~name:"bitset binary ops agree with Set" ~count:200
    QCheck2.Gen.(
      triple (int_range 1 150)
        (list_size (int_bound 100) (int_bound 149))
        (list_size (int_bound 100) (int_bound 149)))
    (fun (cap, xs, ys) ->
      let xs = List.map (fun i -> i mod cap) xs and ys = List.map (fun i -> i mod cap) ys in
      let a = Bitset.of_list cap xs and b = Bitset.of_list cap ys in
      let sa = IntSet.of_list xs and sb = IntSet.of_list ys in
      let test op set_op =
        let t = Bitset.copy a in
        op ~into:t b;
        Bitset.to_list t = IntSet.elements (set_op sa sb)
      in
      test Bitset.union_into IntSet.union
      && test Bitset.inter_into IntSet.inter
      && test Bitset.diff_into IntSet.diff
      && Bitset.subset a b = IntSet.subset sa sb
      && Bitset.intersects a b = not (IntSet.is_empty (IntSet.inter sa sb)))

(* Differential checks for the word-parallel iteration and sampling
   kernels against naive per-bit references.  The kernels are tuned (de
   Bruijn bit extraction, SWAR popcount, word-walk sampling) under the
   contract that observable behaviour — membership order, and for
   [random_member] the exact RNG draw — is unchanged; these properties
   pin that contract. *)

let iteration_kernels_test =
  QCheck2.Test.make ~name:"iteration kernels agree with naive bit scan" ~count:200
    QCheck2.Gen.(pair (int_range 1 400) (list_size (int_bound 150) (int_bound 399)))
    (fun (cap, xs) ->
      let xs = List.map (fun i -> i mod cap) xs in
      let bs = Bitset.of_list cap xs in
      let expected = IntSet.elements (IntSet.of_list xs) in
      (* iter must emit exactly the members, in increasing order. *)
      let via_iter = ref [] in
      Bitset.iter (fun i -> via_iter := i :: !via_iter) bs;
      let via_iter = List.rev !via_iter in
      (* iter_words must tile the same members: decode each word with a
         naive 63-step bit scan and concatenate. *)
      let via_words = ref [] in
      Bitset.iter_words
        (fun base bits ->
          for b = 62 downto 0 do
            if bits land (1 lsl b) <> 0 then via_words := (base + b) :: !via_words
          done)
        bs;
      let via_words = List.sort compare !via_words in
      via_iter = expected && via_words = expected
      && Bitset.fold (fun i acc -> i :: acc) bs [] = List.rev expected
      && Array.to_list (Bitset.to_array bs) = expected)

let word_range_kernels_test =
  QCheck2.Test.make ~name:"word-range kernels agree with whole-set scans" ~count:200
    QCheck2.Gen.(pair (int_range 1 400) (list_size (int_bound 150) (int_bound 399)))
    (fun (cap, xs) ->
      let xs = List.map (fun i -> i mod cap) xs in
      let bs = Bitset.of_list cap xs in
      let nw = Bitset.num_words bs in
      let expected = IntSet.elements (IntSet.of_list xs) in
      (* Tiling [0, nw) at any split must reproduce iter exactly. *)
      let collect lo hi =
        let acc = ref [] in
        Bitset.iter_range (fun i -> acc := i :: !acc) bs ~lo ~hi;
        List.rev !acc
      in
      let mid = nw / 2 in
      let ok_iter_range = collect 0 mid @ collect mid nw = expected in
      (* iter_words_range over the full range = iter_words. *)
      let words_of f =
        let acc = ref [] in
        f (fun base bits -> acc := (base, bits) :: !acc);
        List.rev !acc
      in
      let ok_words =
        words_of (fun f -> Bitset.iter_words f bs)
        = words_of (fun f -> Bitset.iter_words_range f bs ~lo:0 ~hi:nw)
      in
      (* members_into fills a prefix with exactly to_array's contents. *)
      let buf = Array.make (Bitset.cardinal bs + 3) (-1) in
      let k = Bitset.members_into bs buf in
      let ok_members =
        k = Bitset.cardinal bs && Array.to_list (Array.sub buf 0 k) = expected
      in
      (* unsafe_set_bit leaves cardinal stale; refresh_cardinal repairs
         it and the resulting set equals a checked build. *)
      let raw = Bitset.create cap in
      List.iter (Bitset.unsafe_set_bit raw) xs;
      Bitset.refresh_cardinal raw;
      let ok_raw = Bitset.equal raw bs in
      (* union_words_range over split ranges = union_into of all
         sources, and the returned range popcounts sum to the merged
         cardinality (so unsafe_set_cardinal of the sum is exact). *)
      let third = List.filteri (fun i _ -> i mod 3 = 0) xs in
      let srcs = [| bs; Bitset.of_list cap third |] in
      let merged = Bitset.create cap in
      let c1 = Bitset.union_words_range ~into:merged srcs ~lo:0 ~hi:mid in
      let c2 = Bitset.union_words_range ~into:merged srcs ~lo:mid ~hi:nw in
      Bitset.unsafe_set_cardinal merged (c1 + c2);
      let reference = Bitset.create cap in
      Array.iter (fun s -> Bitset.union_into ~into:reference s) srcs;
      let ok_union =
        Bitset.equal merged reference && Bitset.cardinal merged = Bitset.cardinal reference
      in
      (* drain_words_range merges identically and empties its sources. *)
      let srcs2 = [| Bitset.copy bs; Bitset.of_list cap third |] in
      let drained = Bitset.create cap in
      let dc = Bitset.drain_words_range ~into:drained srcs2 ~lo:0 ~hi:nw in
      Bitset.unsafe_set_cardinal drained dc;
      let ok_drain =
        Bitset.equal drained reference
        && Array.for_all (fun s -> Bitset.popcount_words_range s ~lo:0 ~hi:nw = 0) srcs2
      in
      ok_iter_range && ok_words && ok_members && ok_raw && ok_union && ok_drain)

let random_member_differential_test =
  QCheck2.Test.make ~name:"random_member matches rank-select reference draw-for-draw" ~count:200
    QCheck2.Gen.(triple (int_range 1 400) (list_size (int_bound 120) (int_bound 399)) (int_range 0 10000))
    (fun (cap, xs, seed) ->
      let xs = List.map (fun i -> i mod cap) xs in
      match IntSet.elements (IntSet.of_list xs) with
      | [] -> true
      | members ->
          let bs = Bitset.of_list cap xs in
          let rng = Rng.create seed in
          (* The reference replays the identical state: one int_below
             draw for the rank, then rank-select over the sorted
             members.  Both the sampled value and the post-call RNG
             state must coincide. *)
          let ref_rng = Cobra_prng.Xoshiro.copy rng in
          let actual = Bitset.random_member bs rng in
          let rank = Rng.int_below ref_rng (List.length members) in
          let expected = List.nth members rank in
          actual = expected && Rng.int_below rng 1_000_000 = Rng.int_below ref_rng 1_000_000)

let () =
  Alcotest.run "bitset"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "word boundaries" `Quick test_word_boundaries;
          Alcotest.test_case "fill/clear" `Quick test_fill_clear;
          Alcotest.test_case "set ops" `Quick test_ops;
          Alcotest.test_case "subset/equal" `Quick test_subset_equal;
          Alcotest.test_case "blit" `Quick test_blit;
          Alcotest.test_case "choose/fold" `Quick test_choose_fold;
          Alcotest.test_case "random_member" `Quick test_random_member;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "capacity cap boundary" `Quick test_capacity_cap;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest model_test;
          QCheck_alcotest.to_alcotest binop_test;
          QCheck_alcotest.to_alcotest iteration_kernels_test;
          QCheck_alcotest.to_alcotest word_range_kernels_test;
          QCheck_alcotest.to_alcotest random_member_differential_test;
        ] );
    ]
