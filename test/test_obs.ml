(* Tests for the observability subsystem (Cobra_obs) and its headline
   contract: with the null context a simulation is bit-identical to an
   uninstrumented one, and with a recording context the results are
   STILL bit-identical — observability reads clocks, never RNGs. *)

module Json = Cobra_obs.Json
module Metrics = Cobra_obs.Metrics
module Trace = Cobra_obs.Trace
module Manifest = Cobra_obs.Manifest
module Obs = Cobra_obs.Obs
module Rng = Cobra_prng.Rng
module Gen = Cobra_graph.Gen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- Json ---- *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("count", Json.Int (-42));
      ("big", Json.Int max_int);
      ("pi", Json.Float 3.14159265358979312);
      ("whole", Json.Float 5.0);
      ("tiny", Json.Float 1.25e-17);
      ("text", Json.String "line\n\"quoted\"\tand \\ control \001");
      ("items", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
    ]

let test_json_roundtrip () =
  let s = Json.to_string sample_json in
  Alcotest.(check bool) "compact round-trips" true (Json.of_string_exn s = sample_json);
  let p = Json.to_string_pretty sample_json in
  Alcotest.(check bool) "pretty round-trips" true (Json.of_string_exn p = sample_json)

let test_json_int_float_distinction () =
  (* A whole-valued float must stay a float through the round-trip. *)
  match Json.of_string_exn (Json.to_string (Json.Float 5.0)) with
  | Json.Float f -> Alcotest.(check (float 0.0)) "value" 5.0 f
  | _ -> Alcotest.fail "Float 5.0 did not survive as a float"

let test_json_errors () =
  check_bool "trailing garbage" true (Result.is_error (Json.of_string "{} x"));
  check_bool "unterminated string" true (Result.is_error (Json.of_string "\"abc"));
  check_bool "bare word" true (Result.is_error (Json.of_string "nope"));
  check_bool "empty input" true (Result.is_error (Json.of_string ""))

let test_json_nonfinite () =
  check_string "nan serializes as null" "null" (Json.to_string (Json.Float nan));
  check_string "inf serializes as null" "null" (Json.to_string (Json.Float infinity))

let test_json_control_chars () =
  (* Every C0 control character must be escaped on output (RFC 8259)
     and round-trip exactly. *)
  for code = 0 to 0x1F do
    let s = Printf.sprintf "a%cb" (Char.chr code) in
    let rendered = Json.to_string (Json.String s) in
    String.iter
      (fun c ->
        if Char.code c < 0x20 then
          Alcotest.failf "U+%04X leaked unescaped into %S" code rendered)
      rendered;
    match Json.of_string rendered with
    | Ok (Json.String s') when s' = s -> ()
    | Ok _ -> Alcotest.failf "U+%04X did not round-trip" code
    | Error m -> Alcotest.failf "U+%04X failed to parse back: %s" code m
  done;
  (* ... and a raw (unescaped) control character in the input is a
     parse error, not silently accepted. *)
  for code = 0 to 0x1F do
    let raw = Printf.sprintf "\"a%cb\"" (Char.chr code) in
    check_bool
      (Printf.sprintf "raw U+%04X rejected" code)
      true
      (Result.is_error (Json.of_string raw))
  done;
  (* Escaped forms of the same characters parse fine. *)
  check_bool "escaped newline accepted" true
    (Json.of_string "\"a\\nb\"" = Ok (Json.String "a\nb"));
  check_bool "\\u0000 accepted" true
    (Json.of_string "\"a\\u0000b\"" = Ok (Json.String "a\000b"))

let json_string_roundtrip_test =
  (* Arbitrary bytes — control characters, quotes, backslashes — must
     survive serialize-then-parse byte-for-byte. *)
  QCheck2.Test.make ~name:"json string round-trip over arbitrary bytes" ~count:500
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 127)) (int_range 0 64))
    (fun s ->
      match Json.of_string (Json.to_string (Json.String s)) with
      | Ok (Json.String s') -> s' = s
      | _ -> false)

(* ---- Metrics ---- *)

let test_counters_and_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~scope:"test" "events" in
  Metrics.incr c;
  Metrics.add c 10;
  let c' = Metrics.counter m ~scope:"test" "events" in
  Metrics.incr c';
  let g = Metrics.gauge m "speed" in
  Metrics.set g 2.5;
  match Metrics.snapshot m with
  | [ ("test/events", Metrics.Counter_v n); ("speed", Metrics.Gauge_v v) ] ->
      check_int "counter accumulated through both handles" 12 n;
      Alcotest.(check (float 0.0)) "gauge" 2.5 v
  | other -> Alcotest.failf "unexpected snapshot shape (%d entries)" (List.length other)

let test_metric_kind_clash () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  check_bool "kind clash rejected" true
    (try
       ignore (Metrics.gauge m "x");
       false
     with Invalid_argument _ -> true)

let test_histogram_bucketing () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[| 1.0; 2.0; 5.0 |] "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 4.9; 5.0; 5.1; 100.0 ];
  match Metrics.snapshot m with
  | [ ("lat", Metrics.Histogram_v v) ] ->
      (* x lands in the first bucket with x <= bound. *)
      Alcotest.(check (list (pair (float 0.0) int)))
        "bucket counts"
        [ (1.0, 2); (2.0, 2); (5.0, 2) ]
        v.buckets;
      check_int "overflow" 2 v.overflow;
      check_int "total" 8 v.total;
      Alcotest.(check (float 1e-9)) "sum" 120.0 v.sum
  | _ -> Alcotest.fail "missing histogram"

let test_histogram_validation () =
  let m = Metrics.create () in
  check_bool "empty buckets rejected" true
    (try
       ignore (Metrics.histogram m ~buckets:[||] "h");
       false
     with Invalid_argument _ -> true);
  check_bool "non-increasing buckets rejected" true
    (try
       ignore (Metrics.histogram m ~buckets:[| 1.0; 1.0 |] "h2");
       false
     with Invalid_argument _ -> true)

(* ---- Trace events & sinks ---- *)

let all_event_kinds =
  [
    Trace.Round_started { round = 1 };
    Trace.Round_ended { round = 1; informed = 7; active = 3; messages = 14 };
    Trace.Trial_completed { trial = 0; latency_ms = 12.5 };
    Trace.Experiment_started { id = "e4" };
    Trace.Experiment_completed { id = "e4"; seconds = 1.75 };
  ]

let test_event_json_roundtrip () =
  List.iter
    (fun e ->
      match Trace.of_json (Trace.to_json e) with
      | Ok e' -> check_bool "event round-trips" true (e = e')
      | Error msg -> Alcotest.fail msg)
    all_event_kinds

let test_memory_sink () =
  let sink = Trace.memory () in
  List.iter (Trace.emit sink) all_event_kinds;
  check_bool "events in emission order" true (Trace.events sink = all_event_kinds);
  check_int "null sink records nothing" 0 (List.length (Trace.events Trace.null))

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "cobra_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Trace.jsonl path in
      List.iter (Trace.emit sink) all_event_kinds;
      Trace.close sink;
      Trace.close sink;
      (* idempotent *)
      match Trace.read_jsonl path with
      | Ok events -> check_bool "write -> re-read -> same events" true (events = all_event_kinds)
      | Error msg -> Alcotest.fail msg)

(* ---- Manifest ---- *)

let test_manifest_fields () =
  let m =
    Manifest.create ~experiment:"e4" ~graph_params:[ ("family", "hypercube"); ("n", "256") ]
      ~master_seed:2017 ~scale:"full" ~domains:4 ()
  in
  let json = Manifest.to_json m in
  let str_field name =
    match Option.bind (Json.member json name) Json.to_string_opt with
    | Some s -> s
    | None -> Alcotest.failf "manifest field %s missing" name
  in
  check_int "master_seed" 2017
    (Option.get (Option.bind (Json.member json "master_seed") Json.to_int_opt));
  check_int "domains" 4 (Option.get (Option.bind (Json.member json "domains") Json.to_int_opt));
  check_string "scale" "full" (str_field "scale");
  check_string "experiment" "e4" (str_field "experiment");
  check_string "ocaml_version" Sys.ocaml_version (str_field "ocaml_version");
  check_bool "git_revision nonempty" true (String.length (str_field "git_revision") > 0);
  check_bool "hostname nonempty" true (String.length (str_field "hostname") > 0);
  check_bool "created_at is ISO-8601-ish" true
    (String.length (str_field "created_at") = 20 && (str_field "created_at").[10] = 'T');
  match Json.member json "graph_params" with
  | Some (Json.Obj [ ("family", Json.String "hypercube"); ("n", Json.String "256") ]) -> ()
  | _ -> Alcotest.fail "graph_params not preserved"

(* ---- the determinism contract ---- *)

(* Montecarlo results must be bitwise identical with the null context and
   with a recording context; the recording context must additionally have
   seen one Trial_completed per trial and a matching counter. *)
let test_montecarlo_obs_determinism () =
  let work ~trial rng =
    ignore trial;
    let acc = ref 0.0 in
    for _ = 1 to 1 + Rng.int_below rng 500 do
      acc := !acc +. Rng.float01 rng
    done;
    !acc
  in
  Cobra_parallel.Pool.with_pool ~num_domains:3 (fun pool ->
      let trials = 100 in
      let plain = Cobra_parallel.Montecarlo.run ~pool ~master_seed:7 ~trials work in
      let obs = Obs.create ~sink:(Trace.memory ()) () in
      let observed =
        Cobra_parallel.Montecarlo.run ~obs ~pool ~master_seed:7 ~trials work
      in
      Alcotest.(check (array (float 0.0))) "null sink = recording sink" plain observed;
      let trial_events =
        List.filter (function Trace.Trial_completed _ -> true | _ -> false)
          (Trace.events (Obs.sink obs))
      in
      check_int "one Trial_completed per trial" trials (List.length trial_events);
      (match Metrics.snapshot (Obs.metrics obs) with
      | ("montecarlo/trials", Metrics.Counter_v n) :: _ -> check_int "trials counter" trials n
      | _ -> Alcotest.fail "montecarlo/trials counter missing");
      check_bool "latency histogram populated" true
        (List.exists
           (function
             | "montecarlo/trial_latency_ms", Metrics.Histogram_v v -> v.Metrics.total = trials
             | _ -> false)
           (Metrics.snapshot (Obs.metrics obs))))

(* The acceptance property: cover-time ensembles, observability on vs
   off, identical in every reported statistic. *)
let test_cover_ensemble_obs_determinism () =
  let g = Gen.random_regular ~n:64 ~r:8 (Rng.create 5) in
  Cobra_parallel.Pool.with_pool ~num_domains:2 (fun pool ->
      let plain = Cobra_core.Estimate.cover_time ~pool ~master_seed:2017 ~trials:40 g in
      let obs = Obs.create ~sink:(Trace.memory ()) () in
      let observed =
        Cobra_core.Estimate.cover_time ~obs ~pool ~master_seed:2017 ~trials:40 g
      in
      check_bool "cover-time ensemble identical with observability on" true (plain = observed))

(* Single COBRA runs: same seed, obs on vs off, identical rounds; the
   recording context sees a Round_started/Round_ended pair per round with
   a fully-informed final event. *)
let test_cobra_run_round_events () =
  let g = Gen.hypercube 5 in
  let n = Cobra_graph.Graph.n g in
  let plain = Cobra_core.Cobra.run_cover g (Rng.create 11) ~start:0 () in
  let obs = Obs.create ~sink:(Trace.memory ()) () in
  let observed = Cobra_core.Cobra.run_cover g (Rng.create 11) ~obs ~start:0 () in
  check_bool "rounds identical" true (plain = observed);
  let rounds = match observed with Some r -> r | None -> Alcotest.fail "did not cover" in
  let events = Trace.events (Obs.sink obs) in
  check_int "two events per round" (2 * rounds) (List.length events);
  let last_round_end =
    List.fold_left
      (fun acc e ->
        match e with
        | Trace.Round_ended { round; informed; _ } -> Some (round, informed)
        | _ -> acc)
      None events
  in
  match last_round_end with
  | Some (round, informed) ->
      check_int "final event at cover round" rounds round;
      check_int "final informed count is n" n informed
  | None -> Alcotest.fail "no Round_ended events"

(* The message-passing engine: same determinism contract, plus message
   accounting consistency between the engine and its events. *)
let test_engine_round_events () =
  let g = Gen.petersen () in
  let plain = Cobra_net.Gossip.push_pull_cover g (Rng.create 3) ~start:0 in
  let obs = Obs.create ~sink:(Trace.memory ()) () in
  let module E = Cobra_net.Gossip.Push_pull_engine in
  let t = E.create ~obs g ~start:0 in
  let rounds = E.run_until_covered t (Rng.create 3) in
  check_bool "rounds identical with obs" true (plain.Cobra_net.Gossip.rounds = rounds);
  let events = Trace.events (Obs.sink obs) in
  let per_round_messages =
    List.filter_map
      (function Trace.Round_ended r -> Some r.messages | _ -> None)
      events
  in
  check_int "events cover every round" (Option.get rounds) (List.length per_round_messages);
  check_int "event messages sum to engine total" (E.messages_sent t)
    (List.fold_left ( + ) 0 per_round_messages)

(* Experiment wrapper: start/complete events bracket the run and the
   output string is identical to an unobserved run. *)
let test_experiment_run_observed () =
  let e = Option.get (Cobra_experiments.Registry.find "e1") in
  Cobra_parallel.Pool.with_pool ~num_domains:1 (fun pool ->
      let plain =
        e.Cobra_experiments.Experiment.run ~obs:Obs.null ~pool ~master_seed:3
          ~scale:Cobra_experiments.Experiment.Quick
      in
      let obs = Obs.create ~sink:(Trace.memory ()) () in
      let observed =
        Cobra_experiments.Experiment.run_observed ~obs e ~pool ~master_seed:3
          ~scale:Cobra_experiments.Experiment.Quick
      in
      check_string "output identical" plain observed;
      let events = Trace.events (Obs.sink obs) in
      check_bool "starts with Experiment_started" true
        (match events with Trace.Experiment_started { id = "e1" } :: _ -> true | _ -> false);
      check_bool "ends with Experiment_completed" true
        (match List.rev events with
        | Trace.Experiment_completed { id = "e1"; seconds } :: _ -> seconds >= 0.0
        | _ -> false);
      check_bool "experiment gauge recorded" true
        (List.exists
           (function "experiment/e1/seconds", Metrics.Gauge_v _ -> true | _ -> false)
           (Metrics.snapshot (Obs.metrics obs))))

let test_report_renders () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m ~scope:"s" "c") 3;
  Metrics.set (Metrics.gauge m ~scope:"s" "g") 1.5;
  let h = Metrics.histogram m ~scope:"s" ~buckets:[| 1.0; 10.0 |] "h" in
  Metrics.observe h 0.5;
  Metrics.observe h 99.0;
  let snapshot = Metrics.snapshot m in
  let text = Cobra_obs.Report.to_text snapshot in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "text mentions every instrument" true
    (List.for_all (contains text) [ "s/c"; "s/g"; "s/h" ]);
  (* JSON snapshot re-parses and keeps the counter value. *)
  let json = Json.of_string_exn (Json.to_string (Cobra_obs.Report.to_json snapshot)) in
  check_int "counter in json" 3
    (Option.get (Option.bind (Json.member json "s/c") Json.to_int_opt))

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "int/float distinction" `Quick test_json_int_float_distinction;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "control characters" `Quick test_json_control_chars;
          QCheck_alcotest.to_alcotest json_string_roundtrip_test;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
          Alcotest.test_case "kind clash" `Quick test_metric_kind_clash;
          Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
        ] );
      ( "trace",
        [
          Alcotest.test_case "event json round-trip" `Quick test_event_json_roundtrip;
          Alcotest.test_case "memory sink" `Quick test_memory_sink;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
        ] );
      ("manifest", [ Alcotest.test_case "fields present" `Quick test_manifest_fields ]);
      ( "determinism",
        [
          Alcotest.test_case "montecarlo null = recording" `Quick
            test_montecarlo_obs_determinism;
          Alcotest.test_case "cover ensemble obs on = off" `Quick
            test_cover_ensemble_obs_determinism;
          Alcotest.test_case "cobra run round events" `Quick test_cobra_run_round_events;
          Alcotest.test_case "engine round events" `Quick test_engine_round_events;
          Alcotest.test_case "experiment run_observed" `Quick test_experiment_run_observed;
        ] );
      ("report", [ Alcotest.test_case "renders" `Quick test_report_renders ]);
    ]
