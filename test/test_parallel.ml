(* Tests for the domain pool and the deterministic Monte-Carlo driver.
   The headline property: results are a function of the master seed only,
   never of the schedule or the number of domains. *)

module Pool = Cobra_parallel.Pool
module Montecarlo = Cobra_parallel.Montecarlo
module Rng = Cobra_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_parallel_for_covers_all_indices () =
  Pool.with_pool ~num_domains:3 (fun pool ->
      let n = 10_000 in
      let hits = Array.make n 0 in
      Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri (fun i c -> if c <> 1 then Alcotest.failf "index %d executed %d times" i c) hits)

let test_parallel_for_empty_range () =
  Pool.with_pool ~num_domains:2 (fun pool ->
      let ran = ref false in
      Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> ran := true);
      Pool.parallel_for pool ~lo:7 ~hi:3 (fun _ -> ran := true);
      check_bool "no iteration on empty range" false !ran)

let test_serial_pool () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      check_int "size" 1 (Pool.size pool);
      let sum = ref 0 in
      Pool.parallel_for pool ~lo:0 ~hi:100 (fun i -> sum := !sum + i);
      check_int "sum" 4950 !sum)

let test_pool_reuse () =
  Pool.with_pool ~num_domains:2 (fun pool ->
      for round = 1 to 20 do
        let n = 100 * round in
        let hits = Array.make n 0 in
        Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- 1);
        let total = Array.fold_left ( + ) 0 hits in
        check_int (Printf.sprintf "round %d" round) n total
      done)

let test_parallel_init () =
  Pool.with_pool ~num_domains:3 (fun pool ->
      let a = Pool.parallel_init pool 1000 (fun i -> i * i) in
      Alcotest.(check (array int)) "matches Array.init" (Array.init 1000 (fun i -> i * i)) a;
      Alcotest.(check (array int)) "empty" [||] (Pool.parallel_init pool 0 (fun i -> i)))

let test_exception_propagates () =
  Pool.with_pool ~num_domains:2 (fun pool ->
      let raised =
        try
          Pool.parallel_for pool ~lo:0 ~hi:1000 (fun i -> if i = 500 then failwith "boom");
          false
        with Failure msg -> msg = "boom"
      in
      check_bool "exception surfaced" true raised;
      (* The pool must still be usable after a failed loop. *)
      let hits = Array.make 10 0 in
      Pool.parallel_for pool ~lo:0 ~hi:10 ~chunk:1 (fun i -> hits.(i) <- i);
      check_int "pool survives" 45 (Array.fold_left ( + ) 0 hits))

let test_shutdown_idempotent () =
  let pool = Pool.create ~num_domains:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  let raised =
    try
      Pool.parallel_for pool ~lo:0 ~hi:1 (fun _ -> ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "use after shutdown rejected" true raised

let test_chunk_validation () =
  Pool.with_pool ~num_domains:1 (fun pool ->
      Alcotest.check_raises "bad chunk" (Invalid_argument "Pool.parallel_for: chunk must be >= 1")
        (fun () -> Pool.parallel_for pool ~lo:0 ~hi:10 ~chunk:0 (fun _ -> ())))

let test_create_validation () =
  Alcotest.check_raises "negative domains"
    (Invalid_argument "Pool.create: num_domains must be >= 0") (fun () ->
      ignore (Pool.create ~num_domains:(-1) ()))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Regression: exceptions used to be re-raised with [raise e], which
   resets the backtrace to the re-raise site inside pool.ml.  The raise
   site in the loop body must survive to the caller. *)
let test_backtrace_preserved () =
  Printexc.record_backtrace true;
  Pool.with_pool ~num_domains:0 (fun pool ->
      let bt =
        try
          Pool.parallel_for pool ~lo:0 ~hi:10 ~chunk:1 (fun i ->
              if i = 5 then failwith "bt-probe");
          Alcotest.fail "expected the loop to raise"
        with Failure _ -> Printexc.get_backtrace ()
      in
      check_bool "backtrace reaches the raise site" true (contains bt "test_parallel"))

let test_cancel_stops_iteration () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let cancel = Pool.Cancel.create () in
      let executed = ref 0 in
      let raised =
        try
          Pool.parallel_for pool ~lo:0 ~hi:1000 ~chunk:1 ~cancel (fun i ->
              incr executed;
              if i = 10 then Pool.Cancel.cancel cancel);
          false
        with Pool.Cancelled -> true
      in
      check_bool "raised Cancelled" true raised;
      check_bool "stopped before the end" true (!executed < 1000);
      check_bool "ran up to the cancel point" true (!executed >= 11);
      (* The pool survives, and a fresh token does not trip. *)
      let hits = ref 0 in
      Pool.parallel_for pool ~lo:0 ~hi:10 ~cancel:(Pool.Cancel.create ()) (fun _ -> incr hits);
      check_int "pool survives cancellation" 10 !hits)

let test_cancel_before_start () =
  Pool.with_pool ~num_domains:2 (fun pool ->
      let cancel = Pool.Cancel.create () in
      Pool.Cancel.cancel cancel;
      let executed = ref 0 in
      let raised =
        try
          Pool.parallel_for pool ~lo:0 ~hi:100 ~cancel (fun _ -> incr executed);
          false
        with Pool.Cancelled -> true
      in
      check_bool "raised Cancelled" true raised;
      check_int "nothing ran under a tripped token" 0 !executed)

let test_deadline_stops_iteration () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let executed = ref 0 in
      let raised =
        try
          Pool.parallel_for pool ~lo:0 ~hi:1000 ~chunk:1 ~deadline_s:0.05 (fun _ ->
              incr executed;
              Unix.sleepf 0.01);
          false
        with Pool.Deadline_exceeded -> true
      in
      check_bool "raised Deadline_exceeded" true raised;
      check_bool "stopped before the end" true (!executed < 1000);
      check_bool "at least one chunk ran" true (!executed >= 1);
      (* A generous deadline never trips. *)
      let hits = ref 0 in
      Pool.parallel_for pool ~lo:0 ~hi:10 ~deadline_s:3600.0 (fun _ -> incr hits);
      check_int "generous deadline" 10 !hits)

let test_deadline_validation () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      Alcotest.check_raises "zero deadline"
        (Invalid_argument "Pool.parallel_for: deadline must be > 0") (fun () ->
          Pool.parallel_for pool ~lo:0 ~hi:1 ~deadline_s:0.0 (fun _ -> ())))

(* A body failure must win over a cancellation that trips afterwards. *)
let test_failure_beats_cancellation () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let cancel = Pool.Cancel.create () in
      let raised =
        try
          Pool.parallel_for pool ~lo:0 ~hi:100 ~chunk:1 ~cancel (fun i ->
              if i = 3 then begin
                Pool.Cancel.cancel cancel;
                failwith "boom"
              end);
          "nothing"
        with
        | Failure _ -> "failure"
        | Pool.Cancelled -> "cancelled"
      in
      Alcotest.(check string) "failure takes precedence" "failure" raised)

(* Workers back off to microsleeps when idle; a burst of jobs after a
   long idle period must still be picked up promptly and correctly. *)
let test_idle_then_burst () =
  Pool.with_pool ~num_domains:3 (fun pool ->
      (* Warm the pool, then leave it idle long past the spin budget so
         every worker is deep in the sleep phase of its backoff. *)
      Pool.parallel_for pool ~lo:0 ~hi:100 (fun _ -> ());
      Unix.sleepf 0.05;
      for round = 1 to 5 do
        let n = 5_000 in
        let hits = Array.make n 0 in
        let t0 = Unix.gettimeofday () in
        Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
        let elapsed = Unix.gettimeofday () -. t0 in
        Array.iteri
          (fun i c ->
            if c <> 1 then
              Alcotest.failf "round %d: index %d executed %d times after idle" round i c)
          hits;
        (* Generous bound: wake-up latency is capped at max_idle_sleep
           (0.2 ms per worker), so even a loaded CI box finishes a burst
           in well under a second. *)
        check_bool (Printf.sprintf "round %d wakes up promptly" round) true (elapsed < 1.0);
        if round < 5 then Unix.sleepf 0.02
      done)

(* The determinism contract: parallel = serial, for any domain count. *)
let test_montecarlo_schedule_independence () =
  let work ~trial rng =
    ignore trial;
    (* Uneven workloads to force domains to interleave differently. *)
    let spins = 1 + Rng.int_below rng 2000 in
    let acc = ref 0.0 in
    for _ = 1 to spins do
      acc := !acc +. Rng.float01 rng
    done;
    !acc
  in
  let serial = Montecarlo.run_serial ~master_seed:99 ~trials:200 work in
  List.iter
    (fun domains ->
      Pool.with_pool ~num_domains:domains (fun pool ->
          let par = Montecarlo.run ~pool ~master_seed:99 ~trials:200 work in
          Alcotest.(check (array (float 0.0)))
            (Printf.sprintf "bitwise equal with %d domains" domains)
            serial par))
    [ 0; 1; 3; 7 ]

let test_montecarlo_seed_sensitivity () =
  let work ~trial rng =
    ignore trial;
    Rng.float01 rng
  in
  let a = Montecarlo.run_serial ~master_seed:1 ~trials:50 work in
  let b = Montecarlo.run_serial ~master_seed:2 ~trials:50 work in
  check_bool "different seeds differ" false (a = b)

let test_montecarlo_validation () =
  Pool.with_pool ~num_domains:1 (fun pool ->
      Alcotest.check_raises "zero trials" (Invalid_argument "Montecarlo: trials must be >= 1")
        (fun () ->
          ignore
            (Montecarlo.run ~pool ~master_seed:1 ~trials:0 (fun ~trial rng ->
                 ignore trial;
                 Rng.float01 rng))))

let test_summarize () =
  let s = Montecarlo.summarize [| 1.0; 2.0; 3.0 |] in
  check_int "count" 3 s.count;
  Alcotest.(check (float 1e-9)) "mean" 2.0 s.mean

let test_pool_stats () =
  Pool.with_pool ~num_domains:2 (fun pool ->
      let s0 = Pool.stats pool in
      check_int "workers matches size" (Pool.size pool) s0.workers;
      check_int "idle pool has no busy workers" 0 s0.busy_workers;
      check_int "idle pool has no jobs in flight" 0 s0.jobs_in_flight;
      let completed0 = s0.jobs_completed in
      (* Observe the gauges from inside a running loop body: the
         submitting caller is itself a busy worker, so both gauges must
         read >= 1 at that instant. *)
      let saw_in_flight = ref 0 and saw_busy = ref 0 in
      Pool.parallel_for pool ~lo:0 ~hi:64 ~chunk:1 (fun _ ->
          let s = Pool.stats pool in
          if s.jobs_in_flight > !saw_in_flight then saw_in_flight := s.jobs_in_flight;
          if s.busy_workers > !saw_busy then saw_busy := s.busy_workers);
      check_int "exactly one job in flight during the loop" 1 !saw_in_flight;
      check_bool "at least one busy worker during the loop" true (!saw_busy >= 1);
      check_bool "busy never exceeds workers" true (!saw_busy <= s0.workers);
      let s1 = Pool.stats pool in
      check_int "completed incremented once" (completed0 + 1) s1.jobs_completed;
      check_int "quiescent: no busy workers" 0 s1.busy_workers;
      check_int "quiescent: no jobs in flight" 0 s1.jobs_in_flight;
      (* A failing loop still restores the gauges. *)
      (try Pool.parallel_for pool ~lo:0 ~hi:8 (fun _ -> failwith "boom")
       with Failure _ -> ());
      let s2 = Pool.stats pool in
      check_int "failure: gauges restored" 0 s2.jobs_in_flight;
      check_int "failure: still counted as completed" (completed0 + 2) s2.jobs_completed)

let parallel_sum_matches_test =
  QCheck2.Test.make ~name:"parallel_init = Array.init for arbitrary sizes" ~count:30
    QCheck2.Gen.(pair (int_range 0 5000) (int_range 0 4))
    (fun (n, domains) ->
      Pool.with_pool ~num_domains:domains (fun pool ->
          Pool.parallel_init pool n (fun i -> (i * 7) mod 13) = Array.init n (fun i -> (i * 7) mod 13)))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "covers all indices" `Quick test_parallel_for_covers_all_indices;
          Alcotest.test_case "empty range" `Quick test_parallel_for_empty_range;
          Alcotest.test_case "serial pool" `Quick test_serial_pool;
          Alcotest.test_case "reuse" `Quick test_pool_reuse;
          Alcotest.test_case "parallel_init" `Quick test_parallel_init;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "chunk validation" `Quick test_chunk_validation;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "idle backoff then burst" `Quick test_idle_then_burst;
          Alcotest.test_case "backtrace preserved" `Quick test_backtrace_preserved;
          Alcotest.test_case "cancel stops iteration" `Quick test_cancel_stops_iteration;
          Alcotest.test_case "cancel before start" `Quick test_cancel_before_start;
          Alcotest.test_case "deadline stops iteration" `Quick test_deadline_stops_iteration;
          Alcotest.test_case "deadline validation" `Quick test_deadline_validation;
          Alcotest.test_case "failure beats cancellation" `Quick test_failure_beats_cancellation;
          Alcotest.test_case "stats introspection" `Quick test_pool_stats;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "schedule independence" `Quick test_montecarlo_schedule_independence;
          Alcotest.test_case "seed sensitivity" `Quick test_montecarlo_seed_sensitivity;
          Alcotest.test_case "validation" `Quick test_montecarlo_validation;
          Alcotest.test_case "summarize" `Quick test_summarize;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest parallel_sum_matches_test ]);
    ]
