(* Tests for the COBRA-as-a-service subsystem: wire framing, cache-key
   canonicalisation, the LRU result cache, the fair bounded scheduler,
   and an in-process server driven end-to-end over loopback TCP —
   including the deadline, backpressure and crash-resume contracts. *)

module Wire = Cobra_server.Wire
module Proto = Cobra_server.Proto
module Key = Cobra_server.Key
module Cache = Cobra_server.Cache
module Sched = Cobra_server.Sched
module Server = Cobra_server.Server
module Client = Cobra_server.Client
module Json = Cobra_obs.Json
module Pool = Cobra_parallel.Pool
module Estimate = Cobra_core.Estimate
module Gen = Cobra_graph.Gen
module Rng = Cobra_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- wire framing ---- *)

let frame_bytes payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  b

let decode_all d =
  let rec go acc = match Wire.Decoder.next d with
    | Some f -> go (f :: acc)
    | None -> List.rev acc
  in
  go []

let test_decoder_whole_frames () =
  let d = Wire.Decoder.create () in
  let b = Bytes.cat (frame_bytes "hello") (Bytes.cat (frame_bytes "") (frame_bytes "world")) in
  Wire.Decoder.feed d b (Bytes.length b);
  (match decode_all d with
  | [ "hello"; ""; "world" ] -> ()
  | fs -> Alcotest.failf "got %d frames: %s" (List.length fs) (String.concat "," fs));
  check_int "nothing pending" 0 (Wire.Decoder.pending_bytes d)

let test_decoder_byte_at_a_time () =
  (* Feeding one byte at a time must produce exactly the same frames:
     prefixes and payloads may straddle any read boundary. *)
  let d = Wire.Decoder.create () in
  let payloads = [ "a"; "longer payload with \"json\" inside"; ""; String.make 300 'x' ] in
  let stream = Bytes.concat Bytes.empty (List.map frame_bytes payloads) in
  let got = ref [] in
  Bytes.iter
    (fun c ->
      let one = Bytes.make 1 c in
      Wire.Decoder.feed d one 1;
      List.iter (fun f -> got := f :: !got) (decode_all d))
    stream;
  check_bool "frames reassembled across boundaries" true (List.rev !got = payloads)

let test_decoder_oversize () =
  let d = Wire.Decoder.create ~max_frame:16 () in
  let b = frame_bytes (String.make 64 'y') in
  let raised =
    try
      Wire.Decoder.feed d b (Bytes.length b);
      ignore (Wire.Decoder.next d);
      false
    with Wire.Frame_too_large n -> n = 64
  in
  check_bool "oversize frame rejected with its claimed size" true raised

let test_blocking_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () ->
      Wire.write_frame a "ping payload";
      check_string "frame round-trips over a socketpair" "ping payload" (Wire.read_frame b);
      Unix.close a;
      check_bool "EOF at boundary raises Closed" true
        (try ignore (Wire.read_frame b); false with Wire.Closed -> true))

(* ---- protocol codec ---- *)

let sample_job : Proto.job =
  {
    kind = Proto.Cover_time;
    graph = { family = "hypercube"; n = 64; gseed = 0 };
    branching = Cobra_core.Process.Fixed 2;
    lazy_ = false;
    max_rounds = Some 4096;
    trials = 8;
    master_seed = 2017;
  }

let test_proto_roundtrip () =
  let reqs =
    [ Proto.Ping; Proto.Stats; Proto.Submit { job = sample_job; deadline_s = Some 1.5 } ]
  in
  List.iteri
    (fun i req ->
      let id = Printf.sprintf "r%d" i in
      match Proto.request_of_json (Proto.request_to_json ~id req) with
      | Ok (id', req') ->
          check_string "id round-trips" id id';
          check_bool "request round-trips" true (req = req')
      | Error m -> Alcotest.failf "request %d failed to round-trip: %s" i m)
    reqs;
  let result : Proto.job_result =
    {
      n = 64; count = 8; mean = 12.5; stddev = 1.25; min = 10.0; max = 15.0;
      median = 12.0; q90 = 14.3; censored = 0; mean_transmissions = 512.0;
    }
  in
  let resps =
    [
      Proto.Pong;
      Proto.Result { cached = true; server_ms = 0.5; result };
      Proto.Error { code = Proto.Overloaded; message = "queue full" };
    ]
  in
  List.iteri
    (fun i resp ->
      let id = Printf.sprintf "s%d" i in
      match Proto.response_of_json (Proto.response_to_json ~id resp) with
      | Ok (id', resp') ->
          check_string "id round-trips" id id';
          check_bool "response round-trips" true (resp = resp')
      | Error m -> Alcotest.failf "response %d failed to round-trip: %s" i m)
    resps

let test_proto_rejects () =
  let bad v =
    check_bool "rejected" true (Result.is_error (Proto.request_of_json (Json.of_string_exn v)))
  in
  bad {|{"v":99,"id":"x","op":"ping"}|};
  bad {|{"v":1,"id":"x","op":"frobnicate"}|};
  bad {|{"v":1,"op":"ping"}|};
  check_bool "unknown family fails validation" true
    (Result.is_error
       (Proto.validate_job { sample_job with graph = { sample_job.graph with family = "nope" } }));
  check_bool "zero trials fails validation" true
    (Result.is_error (Proto.validate_job { sample_job with trials = 0 }));
  check_bool "bad rho fails validation" true
    (Result.is_error
       (Proto.validate_job { sample_job with branching = Cobra_core.Process.Bernoulli 1.5 }))

(* ---- cache keys ---- *)

let test_key_canonicalisation () =
  let base = sample_job in
  check_string "digest is deterministic" (Key.digest base) (Key.digest base);
  (* Equivalent specs must collide: family case/whitespace, and the
     documented draw-for-draw equivalences Bernoulli 1.0 = Fixed 2 and
     Bernoulli 0.0 = Fixed 1. *)
  check_string "family is case/space-insensitive"
    (Key.digest base)
    (Key.digest { base with graph = { base.graph with family = "  HyperCube " } });
  check_string "bernoulli 1.0 = fixed 2"
    (Key.digest { base with branching = Cobra_core.Process.Fixed 2 })
    (Key.digest { base with branching = Cobra_core.Process.Bernoulli 1.0 });
  check_string "bernoulli 0.0 = fixed 1"
    (Key.digest { base with branching = Cobra_core.Process.Fixed 1 })
    (Key.digest { base with branching = Cobra_core.Process.Bernoulli 0.0 });
  (* Distinct parameters must not collide. *)
  let distinct =
    [
      base;
      { base with master_seed = base.master_seed + 1 };
      { base with trials = base.trials + 1 };
      { base with kind = Proto.Infection_time };
      { base with lazy_ = true };
      { base with max_rounds = None };
      { base with max_rounds = Some 4097 };
      { base with branching = Cobra_core.Process.Bernoulli 0.5 };
      { base with graph = { base.graph with n = 65 } };
      { base with graph = { base.graph with gseed = 1 } };
      { base with graph = { base.graph with family = "complete" } };
    ]
  in
  let digests = List.map Key.digest distinct in
  let uniq = List.sort_uniq String.compare digests in
  check_int "all parameter changes give distinct digests" (List.length distinct)
    (List.length uniq)

(* ---- LRU cache ---- *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "k1" 1;
  Cache.add c "k2" 2;
  check_int "both resident" 2 (Cache.length c);
  (* Touch k1 so k2 becomes the LRU victim. *)
  check_bool "k1 hit" true (Cache.find c "k1" = Some 1);
  Cache.add c "k3" 3;
  check_int "capacity respected" 2 (Cache.length c);
  check_bool "k2 evicted (was least recently used)" true (Cache.find c "k2" = None);
  check_bool "k1 survived" true (Cache.find c "k1" = Some 1);
  check_bool "k3 resident" true (Cache.find c "k3" = Some 3);
  check_int "one eviction" 1 (Cache.evictions c);
  (* Counters: 3 hits (k1 twice, k3 once), 1 miss (k2). *)
  check_int "hits" 3 (Cache.hits c);
  check_int "misses" 1 (Cache.misses c);
  (* mem does not disturb recency or counters. *)
  check_bool "mem k1" true (Cache.mem c "k1");
  check_int "mem does not count as hit" 3 (Cache.hits c);
  (* Overwriting updates in place. *)
  Cache.add c "k1" 10;
  check_bool "overwrite visible" true (Cache.find c "k1" = Some 10);
  check_int "overwrite does not grow" 2 (Cache.length c)

(* ---- fair scheduler ---- *)

let test_sched_fairness () =
  let s = Sched.create ~per_client:8 ~global:64 () in
  (* Client 1 floods; clients 2 and 3 each submit one job.  Round-robin
     must serve them interleaved, not after client 1's backlog. *)
  List.iter (fun j -> assert (Sched.enqueue s ~client:1 j = `Accepted)) [ "a1"; "a2"; "a3"; "a4" ];
  assert (Sched.enqueue s ~client:2 "b1" = `Accepted);
  assert (Sched.enqueue s ~client:3 "c1" = `Accepted);
  let order = ref [] in
  let rec drain () =
    match Sched.dequeue s with
    | Some (_, j) -> order := j :: !order; drain ()
    | None -> ()
  in
  drain ();
  check_bool "round-robin interleaves clients" true
    (List.rev !order = [ "a1"; "b1"; "c1"; "a2"; "a3"; "a4" ]);
  check_int "drained" 0 (Sched.queued s)

let test_sched_backpressure () =
  let s = Sched.create ~per_client:2 ~global:3 () in
  check_bool "1st accepted" true (Sched.enqueue s ~client:1 "a1" = `Accepted);
  check_bool "2nd accepted" true (Sched.enqueue s ~client:1 "a2" = `Accepted);
  check_bool "per-client bound refuses" true (Sched.enqueue s ~client:1 "a3" = `Overloaded);
  check_bool "other client still admitted" true (Sched.enqueue s ~client:2 "b1" = `Accepted);
  check_bool "global bound refuses" true (Sched.enqueue s ~client:3 "c1" = `Overloaded);
  check_int "queued for client 1" 2 (Sched.queued_for s ~client:1);
  (* Dropping a client frees its slots and returns its jobs in order. *)
  check_bool "drop returns FIFO order" true (Sched.drop_client s 1 = [ "a1"; "a2" ]);
  check_int "slots freed" 1 (Sched.queued s);
  check_bool "admission recovers after drop" true (Sched.enqueue s ~client:3 "c1" = `Accepted);
  (* A dropped client's rotation slot must not produce stale service. *)
  check_bool "dequeue b1" true (match Sched.dequeue s with Some (2, "b1") -> true | _ -> false);
  check_bool "dequeue c1" true (match Sched.dequeue s with Some (3, "c1") -> true | _ -> false);
  check_bool "empty" true (Sched.dequeue s = None)

(* ---- end-to-end over loopback TCP ---- *)

let temp_counter = ref 0

let fresh_dir () =
  incr temp_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cobra_server_test_%d_%d" (Unix.getpid ()) !temp_counter)
  in
  let rec ensure dir =
    if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      ensure (Filename.dirname dir);
      Sys.mkdir dir 0o755
    end
  in
  ensure d;
  d

let test_config ?journal_dir () =
  { Server.default_config with port = 0; pool_domains = Some 1; journal_dir }

let with_server cfg f =
  let srv = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let with_client srv f =
  let c = Client.connect ~port:(Server.port srv) () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let quick_job ?(seed = 2017) () : Proto.job =
  {
    kind = Proto.Cover_time;
    graph = { family = "complete"; n = 64; gseed = 0 };
    branching = Cobra_core.Process.Fixed 2;
    lazy_ = false;
    max_rounds = None;
    trials = 6;
    master_seed = seed;
  }

(* A job slow enough (seconds) to still be running when we act on it. *)
let slow_job ?(seed = 7) () : Proto.job =
  {
    kind = Proto.Cover_time;
    graph = { family = "path"; n = 1200; gseed = 0 };
    branching = Cobra_core.Process.Fixed 2;
    lazy_ = false;
    max_rounds = None;
    trials = 4;
    master_seed = seed;
  }

(* The reference result the server must reproduce bit-identically:
   trials are pure functions of (master seed, trial index), so any pool
   width and any restart history gives these exact floats. *)
let reference_result (job : Proto.job) =
  let g = Gen.by_name job.graph.family ~n:job.graph.n (Rng.create job.graph.gseed) in
  Pool.with_pool ~num_domains:1 (fun pool ->
      let est =
        Estimate.cover_time ~pool ~master_seed:job.master_seed ~trials:job.trials
          ~branching:job.branching ~lazy_:job.lazy_ ?max_rounds:job.max_rounds g
      in
      Proto.job_result_of_estimate ~n:(Cobra_graph.Graph.n g) est)

let test_e2e_ping_submit_cache () =
  with_server (test_config ()) (fun srv ->
      with_client srv (fun c ->
          check_bool "pong" true (Client.request c Proto.Ping = Proto.Pong);
          let job = quick_job () in
          let expect = reference_result job in
          (match Client.request c (Proto.Submit { job; deadline_s = None }) with
          | Proto.Result { cached; result; _ } ->
              check_bool "first run is not cached" false cached;
              check_bool "result bit-identical to direct estimate" true (result = expect)
          | r -> Alcotest.failf "unexpected reply: %s" (Json.to_string (Proto.response_to_json ~id:"" r)));
          (* The repeat must come from the cache — same bits, no re-run. *)
          (match Client.request c (Proto.Submit { job; deadline_s = None }) with
          | Proto.Result { cached; result; _ } ->
              check_bool "repeat is cached" true cached;
              check_bool "cached result identical" true (result = expect)
          | _ -> Alcotest.fail "repeat did not return a result");
          (* An equivalent-but-differently-spelled job hits the same entry. *)
          let alias =
            { job with
              graph = { job.graph with family = " COMPLETE " };
              branching = Cobra_core.Process.Bernoulli 1.0 }
          in
          (match Client.request c (Proto.Submit { job = alias; deadline_s = None }) with
          | Proto.Result { cached; result; _ } ->
              check_bool "canonicalised alias is a cache hit" true cached;
              check_bool "alias gets identical bits" true (result = expect)
          | _ -> Alcotest.fail "alias did not return a result");
          (* Stats reflect what happened. *)
          match Client.request c Proto.Stats with
          | Proto.Stats_reply j ->
              let stat name =
                match Option.bind (Json.member j name) Json.to_int_opt with
                | Some v -> v
                | None -> Alcotest.failf "stats missing %s" name
              in
              check_int "one job executed" 1 (stat "completed");
              let cache = Option.get (Json.member j "cache") in
              check_bool "cache hits counted" true
                (Option.bind (Json.member cache "hits") Json.to_int_opt = Some 2)
          | _ -> Alcotest.fail "no stats reply"))

let test_e2e_bad_requests () =
  with_server (test_config ()) (fun srv ->
      with_client srv (fun c ->
          let job = { (quick_job ()) with graph = { family = "nope"; n = 64; gseed = 0 } } in
          (match Client.request c (Proto.Submit { job; deadline_s = None }) with
          | Proto.Error { code = Proto.Bad_request; _ } -> ()
          | _ -> Alcotest.fail "unknown family must be a typed bad_request");
          (* The connection survives the refusal. *)
          check_bool "still serviceable" true (Client.request c Proto.Ping = Proto.Pong)))

let test_e2e_malformed_frame () =
  with_server (test_config ()) (fun srv ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
          Wire.write_frame fd "this is not json";
          (match Json.of_string (Wire.read_frame fd) with
          | Ok j -> (
              match Proto.response_of_json j with
              | Ok (_, Proto.Error { code = Proto.Bad_request; _ }) -> ()
              | _ -> Alcotest.fail "malformed payload must get bad_request")
          | Error m -> Alcotest.failf "server sent unparseable error: %s" m);
          (* Framing survived: a real request on the same connection works. *)
          Wire.write_frame fd (Json.to_string (Proto.request_to_json ~id:"p" Proto.Ping));
          match Proto.response_of_json (Json.of_string_exn (Wire.read_frame fd)) with
          | Ok ("p", Proto.Pong) -> ()
          | _ -> Alcotest.fail "connection unusable after a bad request"))

let test_e2e_deadline () =
  with_server (test_config ()) (fun srv ->
      with_client srv (fun c ->
          (match
             Client.request c (Proto.Submit { job = slow_job (); deadline_s = Some 0.05 })
           with
          | Proto.Error { code = Proto.Deadline_exceeded; _ } -> ()
          | Proto.Result _ -> Alcotest.fail "slow job beat a 50ms deadline?"
          | r ->
              Alcotest.failf "expected deadline_exceeded, got %s"
                (Json.to_string (Proto.response_to_json ~id:"" r)));
          (* The executor and pool survive a deadline kill: the next job
             runs normally and produces correct bits. *)
          let job = quick_job ~seed:31 () in
          match Client.request c (Proto.Submit { job; deadline_s = None }) with
          | Proto.Result { result; _ } ->
              check_bool "pool usable after deadline" true (result = reference_result job)
          | _ -> Alcotest.fail "job after deadline failed"))

let test_e2e_backpressure () =
  let cfg = { (test_config ()) with queue_per_client = 1; queue_global = 1 } in
  with_server cfg (fun srv ->
      with_client srv (fun c ->
          (* Three distinct slow jobs: the first occupies the executor,
             the second fills the only queue slot, the third must be
             refused with the typed overloaded response. *)
          let id1 = Client.send c (Proto.Submit { job = slow_job ~seed:1 (); deadline_s = None }) in
          (* Wait until the executor has dequeued job 1 (stats answer
             inline, well before job 1's result), so job 2 gets the
             queue slot deterministically rather than racing for it. *)
          let rec wait_running n =
            if n = 0 then Alcotest.fail "first job never started";
            match Client.request c Proto.Stats with
            | Proto.Stats_reply j -> (
                match Json.member j "running" with
                | Some (Json.String _) -> ()
                | _ ->
                    Unix.sleepf 0.01;
                    wait_running (n - 1))
            | _ -> Alcotest.fail "no stats reply"
          in
          wait_running 500;
          let id2 = Client.send c (Proto.Submit { job = slow_job ~seed:2 (); deadline_s = None }) in
          let id3 = Client.send c (Proto.Submit { job = slow_job ~seed:3 (); deadline_s = None }) in
          let responses = List.init 3 (fun _ -> Client.recv c) in
          let find id =
            match List.assoc_opt id responses with
            | Some r -> r
            | None -> Alcotest.failf "no response for %s" id
          in
          (match find id3 with
          | Proto.Error { code = Proto.Overloaded; _ } -> ()
          | _ -> Alcotest.fail "third job must be refused as overloaded");
          (match (find id1, find id2) with
          | Proto.Result _, Proto.Result _ -> ()
          | _ -> Alcotest.fail "admitted jobs must still complete")))

let test_e2e_resume_from_journal () =
  let dir = fresh_dir () in
  let job = quick_job ~seed:77 () in
  let digest = Key.digest job in
  let expect = reference_result job in
  (* Simulate a server that accepted the job and was then killed hard:
     jobs.jsonl holds the accepted record with no terminal line. *)
  let oc = open_out (Filename.concat dir "jobs.jsonl") in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("digest", Json.String digest);
            ("status", Json.String "accepted");
            ("job", Proto.job_to_json job);
          ]));
  output_char oc '\n';
  close_out oc;
  with_server (test_config ~journal_dir:dir ()) (fun srv ->
      with_client srv (fun c ->
          (* The boot scan re-queued the orphan; submitting the same job
             either attaches to it or hits the cache once it finishes.
             Either way the bits must match the reference exactly. *)
          (match Client.request c (Proto.Submit { job; deadline_s = None }) with
          | Proto.Result { result; _ } ->
              check_bool "resumed job is bit-identical" true (result = expect)
          | r ->
              Alcotest.failf "resume did not produce a result: %s"
                (Json.to_string (Proto.response_to_json ~id:"" r)));
          match Client.request c (Proto.Submit { job; deadline_s = None }) with
          | Proto.Result { cached; result; _ } ->
              check_bool "now served from cache" true cached;
              check_bool "cached bits identical" true (result = expect)
          | _ -> Alcotest.fail "repeat after resume failed"));
  (* The journal now carries the done record: a fresh boot must serve
     the job from the preloaded cache without re-running anything. *)
  with_server (test_config ~journal_dir:dir ()) (fun srv ->
      with_client srv (fun c ->
          match Client.request c (Proto.Submit { job; deadline_s = None }) with
          | Proto.Result { cached; result; _ } ->
              check_bool "warm boot serves from preloaded cache" true cached;
              check_bool "warm boot bits identical" true (result = expect)
          | _ -> Alcotest.fail "warm boot failed"))

let test_e2e_warm_cache_no_rerun () =
  (* A sentinel result in the journal proves preloads are served as-is,
     not re-simulated: no simulation could produce these values. *)
  let dir = fresh_dir () in
  let job = quick_job ~seed:123 () in
  let digest = Key.digest job in
  let sentinel : Proto.job_result =
    {
      n = 64; count = 6; mean = 123456.5; stddev = 0.25; min = 1.0; max = 999999.0;
      median = 123456.0; q90 = 777777.0; censored = 0; mean_transmissions = 42.0;
    }
  in
  let oc = open_out (Filename.concat dir "jobs.jsonl") in
  List.iter
    (fun line ->
      output_string oc (Json.to_string line);
      output_char oc '\n')
    [
      Json.Obj
        [
          ("digest", Json.String digest);
          ("status", Json.String "accepted");
          ("job", Proto.job_to_json job);
        ];
      Json.Obj
        [
          ("digest", Json.String digest);
          ("status", Json.String "done");
          ("result", Proto.job_result_to_json sentinel);
        ];
    ];
  close_out oc;
  with_server (test_config ~journal_dir:dir ()) (fun srv ->
      with_client srv (fun c ->
          match Client.request c (Proto.Submit { job; deadline_s = None }) with
          | Proto.Result { cached; result; _ } ->
              check_bool "served from cache" true cached;
              check_bool "sentinel returned verbatim (no re-run)" true (result = sentinel)
          | _ -> Alcotest.fail "warm cache lookup failed"))

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "whole frames" `Quick test_decoder_whole_frames;
          Alcotest.test_case "byte-at-a-time reassembly" `Quick test_decoder_byte_at_a_time;
          Alcotest.test_case "oversize rejection" `Quick test_decoder_oversize;
          Alcotest.test_case "blocking round-trip" `Quick test_blocking_roundtrip;
        ] );
      ( "proto",
        [
          Alcotest.test_case "round-trip" `Quick test_proto_roundtrip;
          Alcotest.test_case "rejects" `Quick test_proto_rejects;
        ] );
      ("key", [ Alcotest.test_case "canonicalisation" `Quick test_key_canonicalisation ]);
      ("cache", [ Alcotest.test_case "lru + counters" `Quick test_cache_lru ]);
      ( "sched",
        [
          Alcotest.test_case "fairness" `Quick test_sched_fairness;
          Alcotest.test_case "backpressure" `Quick test_sched_backpressure;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "ping, submit, cache" `Quick test_e2e_ping_submit_cache;
          Alcotest.test_case "bad requests" `Quick test_e2e_bad_requests;
          Alcotest.test_case "malformed frame" `Quick test_e2e_malformed_frame;
          Alcotest.test_case "deadline" `Quick test_e2e_deadline;
          Alcotest.test_case "backpressure" `Quick test_e2e_backpressure;
          Alcotest.test_case "resume from journal" `Quick test_e2e_resume_from_journal;
          Alcotest.test_case "warm cache, no re-run" `Quick test_e2e_warm_cache_no_rerun;
        ] );
    ]
