(* Tests for the spectral machinery: the iterative solver against closed
   forms and against the dense Jacobi reference, plus conductance. *)

module Graph = Cobra_graph.Graph
module Gen = Cobra_graph.Gen
module Bitset = Cobra_bitset.Bitset
module Matvec = Cobra_spectral.Matvec
module Eigen = Cobra_spectral.Eigen
module Conductance = Cobra_spectral.Conductance
module Rng = Cobra_prng.Rng

let check_float msg ?(eps = 1e-6) expected actual = Alcotest.(check (float eps)) msg expected actual
let check_bool = Alcotest.(check bool)

(* --- Matvec --- *)

let test_transition_rowsums () =
  (* P applied to the all-ones vector is the all-ones vector. *)
  let g = Gen.petersen () in
  let x = Array.make 10 1.0 and y = Array.make 10 0.0 in
  Matvec.apply_transition g x y;
  Array.iter (fun v -> check_float "P 1 = 1" 1.0 v) y

let test_transition_path () =
  let g = Gen.path 3 in
  let x = [| 1.0; 0.0; 0.0 |] and y = Array.make 3 0.0 in
  Matvec.apply_transition g x y;
  (* (P x)(u) = average of x over N(u). *)
  check_float "end" 0.0 y.(0);
  check_float "middle" 0.5 y.(1);
  check_float "other end" 0.0 y.(2)

let test_normalized_symmetry () =
  (* <N x, y> = <x, N y> on a non-regular graph. *)
  let g = Gen.star 6 in
  let rng = Rng.create 3 in
  let x = Array.init 6 (fun _ -> Rng.float01 rng) in
  let y = Array.init 6 (fun _ -> Rng.float01 rng) in
  let nx = Array.make 6 0.0 and ny = Array.make 6 0.0 in
  Matvec.apply_normalized g x nx;
  Matvec.apply_normalized g y ny;
  check_float "symmetric" ~eps:1e-12 (Matvec.dot nx y) (Matvec.dot x ny)

let test_stationary_eigenvector () =
  (* N (sqrt deg) = sqrt deg on any graph without isolated vertices. *)
  let g = Gen.lollipop ~clique:4 ~tail:3 in
  let pi = Matvec.stationary_direction g in
  let y = Array.make (Graph.n g) 0.0 in
  Matvec.apply_normalized g pi y;
  Array.iteri (fun i v -> check_float (Printf.sprintf "component %d" i) ~eps:1e-12 pi.(i) v) y

let test_vector_helpers () =
  let x = [| 3.0; 4.0 |] in
  check_float "norm2" 5.0 (Matvec.norm2 x);
  let y = [| 1.0; 1.0 |] in
  Matvec.axpy ~alpha:2.0 x y;
  check_float "axpy 0" 7.0 y.(0);
  check_float "axpy 1" 9.0 y.(1);
  Matvec.scale_to_unit x;
  check_float "unit norm" 1.0 (Matvec.norm2 x)

(* --- Eigenvalues: closed forms --- *)

let test_lambda_complete () =
  (* K_n: eigenvalues of P are 1 and -1/(n-1), so lambda = 1/(n-1). *)
  List.iter
    (fun n ->
      let g = Gen.complete n in
      check_float (Printf.sprintf "K%d" n) ~eps:1e-6
        (1.0 /. float_of_int (n - 1))
        (Eigen.second_eigenvalue g))
    [ 4; 7; 12 ]

let test_lambda_odd_cycle () =
  (* C_n (odd): eigenvalues cos(2 pi k / n); the largest magnitude below 1
     is |cos(pi (n-1)/n)| = cos(pi/n). *)
  let n = 9 in
  let g = Gen.cycle n in
  check_float "C9" ~eps:1e-6 (cos (Float.pi /. float_of_int n)) (Eigen.second_eigenvalue g)

let test_lambda_petersen () =
  (* Petersen adjacency spectrum: 3, 1 (x5), -2 (x4); P = A/3. *)
  check_float "petersen" ~eps:1e-6 (2.0 /. 3.0) (Eigen.second_eigenvalue (Gen.petersen ()))

let test_lambda_bipartite_is_one () =
  check_float "even cycle" ~eps:1e-4 1.0 (Eigen.second_eigenvalue (Gen.cycle 8));
  check_float "hypercube" ~eps:1e-4 1.0 (Eigen.second_eigenvalue (Gen.hypercube 3))

let test_lazy_gap_hypercube () =
  (* Lazy walk on the d-cube: lambda_2(P) = 1 - 2/d, so the lazy lambda is
     1 - 1/d and the lazy gap is 1/d. *)
  List.iter
    (fun d ->
      let g = Gen.hypercube d in
      check_float (Printf.sprintf "lazy gap d=%d" d) ~eps:1e-6
        (1.0 /. float_of_int d)
        (Eigen.lazy_eigenvalue_gap g))
    [ 3; 5; 7 ]

let test_second_eigenvector_residual () =
  let g = Gen.petersen () in
  let lambda2, v = Eigen.second_eigenvector g in
  check_float "lambda2 = 1/3" ~eps:1e-6 (1.0 /. 3.0) lambda2;
  (* Residual ||P v - lambda2 v|| should be tiny. *)
  let y = Array.make 10 0.0 in
  Matvec.apply_transition g v y;
  let res = ref 0.0 in
  Array.iteri (fun i x -> res := !res +. ((x -. (lambda2 *. v.(i))) ** 2.0)) y;
  check_bool "residual small" true (sqrt !res < 1e-5)

let test_dense_spectrum_known () =
  let eigs = Eigen.dense_spectrum (Gen.complete 5) in
  check_float "top" ~eps:1e-9 1.0 eigs.(0);
  for i = 1 to 4 do
    check_float "bulk" ~eps:1e-9 (-0.25) eigs.(i)
  done;
  let cube = Eigen.dense_spectrum (Gen.hypercube 3) in
  (* d = 3: eigenvalues (3 - 2k)/3 for k = 0..3 with binomial multiplicity. *)
  check_float "cube top" ~eps:1e-9 1.0 cube.(0);
  check_float "cube 2nd" ~eps:1e-9 (1.0 /. 3.0) cube.(1);
  check_float "cube last" ~eps:1e-9 (-1.0) cube.(7)

let test_singleton () =
  check_float "single vertex" 0.0 (Eigen.second_eigenvalue (Graph.of_edges ~n:1 []))

let power_vs_dense_test =
  QCheck2.Test.make ~name:"power iteration matches dense solver" ~count:25
    QCheck2.Gen.(int_range 4 30)
    (fun n ->
      let rng = Rng.create (n * 7) in
      let p = Float.min 1.0 (3.0 *. log (float_of_int n) /. float_of_int n) in
      let g = Gen.connected_gnp ~n ~p rng in
      let iter = Eigen.second_eigenvalue g in
      let exact = Eigen.second_eigenvalue_exact g in
      Float.abs (iter -. exact) < 1e-5)

(* --- Conductance --- *)

let test_of_set () =
  let g = Gen.cycle 8 in
  let s = Bitset.of_list 8 [ 0; 1; 2; 3 ] in
  (* cut = 2, vol = 8, total = 16 -> phi(S) = 2/8. *)
  check_float "cycle half" 0.25 (Conductance.of_set g s);
  Alcotest.check_raises "empty set"
    (Invalid_argument "Conductance.of_set: set must be proper and non-empty") (fun () ->
      ignore (Conductance.of_set g (Bitset.create 8)))

let test_exact_known () =
  (* P4: the best cut is an end pair {0,1}: cut 1, vol 3 -> 1/3. *)
  check_float "path4" ~eps:1e-9 (1.0 /. 3.0) (Conductance.exact (Gen.path 4));
  (* C6: halves give cut 2, vol 6 -> 1/3. *)
  check_float "cycle6" ~eps:1e-9 (1.0 /. 3.0) (Conductance.exact (Gen.cycle 6));
  (* K4: any balanced cut gives 4/6 = 2/3. *)
  check_float "K4" ~eps:1e-9 (2.0 /. 3.0) (Conductance.exact (Gen.complete 4));
  (* Star: every cut separates leaves from the hub at full conductance. *)
  check_float "star" ~eps:1e-9 1.0 (Conductance.exact (Gen.star 6));
  (* Barbell with a single connecting edge: S = one clique, cut 1,
     vol = 3*2+1 = 7 -> 1/7. *)
  check_float "barbell" ~eps:1e-9 (1.0 /. 7.0)
    (Conductance.exact (Gen.barbell ~clique:3 ~bridge:0))

let sweep_upper_bounds_exact_test =
  QCheck2.Test.make ~name:"sweep cut upper-bounds exact conductance" ~count:20
    QCheck2.Gen.(int_range 4 14)
    (fun n ->
      let rng = Rng.create (n * 13) in
      let p = Float.min 1.0 (3.5 *. log (float_of_int n) /. float_of_int n) in
      let g = Gen.connected_gnp ~n ~p rng in
      Conductance.sweep_upper_bound g >= Conductance.exact g -. 1e-9)

let cheeger_test =
  QCheck2.Test.make ~name:"Cheeger: phi^2/2 <= 1 - lambda2 <= 2 phi" ~count:20
    QCheck2.Gen.(int_range 4 14)
    (fun n ->
      let rng = Rng.create (n * 17) in
      let p = Float.min 1.0 (3.5 *. log (float_of_int n) /. float_of_int n) in
      let g = Gen.connected_gnp ~n ~p rng in
      let phi = Conductance.exact g in
      let eigs = Eigen.dense_spectrum g in
      let gap2 = 1.0 -. eigs.(1) in
      (* The classical inequalities relate the gap of lambda_2 (not the
         absolute lambda) to conductance. *)
      (phi *. phi /. 2.0) -. 1e-9 <= gap2 && gap2 <= (2.0 *. phi) +. 1e-9)

(* --- Mixing --- *)

module Mixing = Cobra_spectral.Mixing

let test_tv_basics () =
  check_float "identical" 0.0 (Mixing.total_variation [| 0.5; 0.5 |] [| 0.5; 0.5 |]);
  check_float "disjoint" 1.0 (Mixing.total_variation [| 1.0; 0.0 |] [| 0.0; 1.0 |]);
  check_float "half" 0.5 (Mixing.total_variation [| 1.0; 0.0 |] [| 0.5; 0.5 |])

let test_stationary () =
  let pi = Mixing.stationary (Gen.star 5) in
  check_float "hub mass" 0.5 pi.(0);
  check_float "leaf mass" 0.125 pi.(1);
  let pr = Mixing.stationary (Gen.petersen ()) in
  Array.iter (fun x -> check_float "uniform on regular" 0.1 x) pr

let test_walk_distribution_mass () =
  let g = Gen.lollipop ~clique:4 ~tail:3 in
  List.iter
    (fun rounds ->
      let d = Mixing.walk_distribution g ~start:0 ~rounds in
      check_float "mass 1" ~eps:1e-12 1.0 (Array.fold_left ( +. ) 0.0 d))
    [ 0; 1; 5; 20 ]

let test_mixing_complete () =
  (* K_n is within 1/(n-1) of uniform after one step. *)
  Alcotest.(check (option int)) "one step" (Some 1) (Mixing.mixing_time (Gen.complete 16))

let test_mixing_bipartite_never () =
  (* Non-lazy on an even cycle oscillates between parity classes. *)
  Alcotest.(check (option int)) "no mixing" None
    (Mixing.mixing_time ~max_rounds:500 (Gen.cycle 8));
  (* The lazy chain mixes fine. *)
  check_bool "lazy mixes" true (Mixing.mixing_time ~lazy_:true (Gen.cycle 8) <> None)

let test_mixing_spectral_relation () =
  (* t_mix(lazy) <= ln(n/eps) / gap_lazy, up to a small constant. *)
  let g = Gen.random_regular ~n:64 ~r:6 (Rng.create 8) in
  match Mixing.mixing_time ~lazy_:true g with
  | None -> Alcotest.fail "expander failed to mix"
  | Some t ->
      let gap = Eigen.lazy_eigenvalue_gap g in
      let bound = log (64.0 /. 0.25) /. gap in
      check_bool (Printf.sprintf "t_mix %d <= 2 * spectral bound %.1f" t bound) true
        (float_of_int t <= 2.0 *. bound)

let test_mixing_monotone_in_rounds () =
  let g = Gen.petersen () in
  let d1 = Mixing.distance_to_stationarity ~lazy_:true g ~start:0 ~rounds:1 in
  let d5 = Mixing.distance_to_stationarity ~lazy_:true g ~start:0 ~rounds:5 in
  let d20 = Mixing.distance_to_stationarity ~lazy_:true g ~start:0 ~rounds:20 in
  check_bool "decreasing" true (d1 >= d5 && d5 >= d20);
  check_bool "converged" true (d20 < 0.01)

(* --- Solver differentials: Lanczos vs oracles, pool determinism --- *)

module Lanczos = Cobra_spectral.Lanczos
module Pool = Cobra_parallel.Pool
module Obs = Cobra_obs.Obs
module Metrics = Cobra_obs.Metrics

let zoo () =
  [
    ("hypercube4", Gen.hypercube 4);
    ("cycle9", Gen.cycle 9);
    ("cycle8", Gen.cycle 8);
    ("complete12", Gen.complete 12);
    ("petersen", Gen.petersen ());
    ("bipartite5x7", Gen.complete_bipartite 5 7);
    ("star9", Gen.star 9);
    ("lollipop5+6", Gen.lollipop ~clique:5 ~tail:6);
    ("barbell6", Gen.barbell ~clique:6 ~bridge:3);
    ("regular8_64", Gen.random_regular ~n:64 ~r:8 (Rng.create 11));
  ]

let test_lanczos_matches_jacobi () =
  List.iter
    (fun (name, g) ->
      let l = Eigen.second_eigenvalue ~solver:Eigen.Lanczos g in
      let j = Eigen.second_eigenvalue ~solver:Eigen.Jacobi g in
      check_float name ~eps:1e-8 j l)
    (zoo ())

let test_lanczos_matches_power () =
  List.iter
    (fun (name, g) ->
      let l = Eigen.second_eigenvalue ~solver:Eigen.Lanczos g in
      let p = Eigen.second_eigenvalue ~solver:Eigen.Power g in
      check_float name ~eps:1e-6 p l)
    [ ("petersen", Gen.petersen ()); ("lollipop", Gen.lollipop ~clique:5 ~tail:4) ]

let test_sym_eig_qr_matches_jacobi () =
  let k = 13 in
  let rng = Rng.create 7 in
  let a = Array.init k (fun _ -> Array.make k 0.0) in
  for i = 0 to k - 1 do
    for j = i to k - 1 do
      let x = Rng.float01 rng -. 0.5 in
      a.(i).(j) <- x;
      a.(j).(i) <- x
    done
  done;
  let orig = Array.map Array.copy a in
  let e_j, _ = Lanczos.sym_eig (Array.map Array.copy a) in
  let e_q, v_q = Lanczos.sym_eig_qr a in
  for i = 0 to k - 1 do
    check_float (Printf.sprintf "eig %d" i) ~eps:1e-10 e_j.(i) e_q.(i)
  done;
  (* QR eigenpairs satisfy A v = lambda v to machine precision. *)
  for j = 0 to k - 1 do
    for i = 0 to k - 1 do
      let s = ref 0.0 in
      for l = 0 to k - 1 do
        s := !s +. (orig.(i).(l) *. v_q.(l).(j))
      done;
      check_float (Printf.sprintf "residual %d,%d" i j) ~eps:1e-12 0.0
        (!s -. (e_q.(j) *. v_q.(i).(j)))
    done
  done

let test_pool_width_invariance () =
  (* Blocked matvec: above the parallelism threshold (nnz > 2^15), the
     result must be bit-identical for any pool width. *)
  let g = Gen.random_regular ~n:8192 ~r:8 (Rng.create 3) in
  let n = Graph.n g in
  let op = Matvec.normalized_op g in
  let x = Array.init n (fun i -> sin (float_of_int i)) in
  let serial = Array.make n 0.0 in
  Matvec.apply op x serial;
  List.iter
    (fun w ->
      Pool.with_pool ~num_domains:w (fun pool ->
          let y = Array.make n 0.0 in
          Matvec.apply ~pool op x y;
          check_bool (Printf.sprintf "matvec width %d" w) true (y = serial)))
    [ 1; 2; 4 ];
  (* Chunked reductions: vectors longer than the reduction chunk take
     the per-chunk path; partial sums combine in index order at any
     width, so pooled dot is bit-identical to serial. *)
  let m = 70_000 in
  let a = Array.init m (fun i -> cos (float_of_int i)) in
  let b = Array.init m (fun i -> sin (float_of_int (i * 7))) in
  let serial_dot = Matvec.dot a b in
  List.iter
    (fun w ->
      Pool.with_pool ~num_domains:w (fun pool ->
          check_bool
            (Printf.sprintf "dot width %d" w)
            true
            (Matvec.dot ~pool a b = serial_dot)))
    [ 1; 2; 4 ];
  (* And the full eigensolve built on both. *)
  let lam_serial = Eigen.second_eigenvalue g in
  Pool.with_pool ~num_domains:2 (fun pool ->
      check_bool "eigensolve width 2" true (Eigen.second_eigenvalue ~pool g = lam_serial))

let test_not_converged_typed () =
  let g = Gen.random_regular ~n:64 ~r:8 (Rng.create 4) in
  match Eigen.second_eigenvalue_r ~max_iter:2 g with
  | Ok lam -> Alcotest.failf "expected Error, got Ok %g" lam
  | Error nc ->
      check_bool "best clamped" true (nc.Eigen.best >= 0.0 && nc.Eigen.best <= 1.0);
      check_bool "matvecs bounded" true (nc.Eigen.matvecs >= 1)

let test_obs_solver_counters () =
  let obs = Obs.create () in
  let g = Gen.petersen () in
  ignore (Eigen.second_eigenvalue ~obs g);
  let snap = Metrics.snapshot (Obs.metrics obs) in
  let counter name =
    match List.assoc_opt name snap with
    | Some (Metrics.Counter_v c) -> c
    | _ -> Alcotest.failf "missing counter %s" name
  in
  check_bool "one solve" true (counter "spectral/solves_lanczos" = 1);
  check_bool "matvecs counted" true (counter "spectral/matvecs" > 0);
  let obs2 = Obs.create () in
  ignore (Cobra_core.Walk_theory.all_hitting_times ~obs:obs2 g);
  let snap2 = Metrics.snapshot (Obs.metrics obs2) in
  (match List.assoc_opt "walk/cg_solves" snap2 with
  | Some (Metrics.Counter_v c) -> check_bool "one cg solve per target" true (c = Graph.n g)
  | _ -> Alcotest.fail "missing walk/cg_solves")

let test_cheb_matches_exact_evolution () =
  let g = Gen.lollipop ~clique:4 ~tail:5 in
  List.iter
    (fun rounds ->
      let exact = Mixing.walk_distribution ~lazy_:true ~exact:true g ~start:0 ~rounds in
      let cheb = Mixing.walk_distribution ~lazy_:true g ~start:0 ~rounds in
      check_float
        (Printf.sprintf "tv at t=%d" rounds)
        ~eps:1e-8 0.0
        (Mixing.total_variation exact cheb))
    [ 70; 200 ]

let test_mixing_time_from_bisection () =
  let g = Gen.petersen () in
  List.iter
    (fun start ->
      match Mixing.mixing_time_from ~lazy_:true g ~start with
      | None -> Alcotest.fail "lazy walk on petersen must mix"
      | Some t ->
          check_bool "crossed at t" true
            (Mixing.distance_to_stationarity ~lazy_:true g ~start ~rounds:t <= 0.25);
          if t > 0 then
            check_bool "not crossed at t-1" true
              (Mixing.distance_to_stationarity ~lazy_:true g ~start ~rounds:(t - 1) > 0.25))
    [ 0; 3; 9 ]

let test_cg_matches_dense_oracle () =
  let module WT = Cobra_core.Walk_theory in
  List.iter
    (fun (name, g) ->
      let dense = WT.all_hitting_times_dense g in
      let cg = WT.all_hitting_times g in
      let n = Graph.n g in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          check_float (Printf.sprintf "%s H(%d,%d)" name u v) ~eps:1e-5 dense.(u).(v) cg.(u).(v)
        done
      done)
    [
      ("petersen", Gen.petersen ());
      ("lollipop4+5", Gen.lollipop ~clique:4 ~tail:5);
      ("cycle11", Gen.cycle 11);
    ]

let () =
  Alcotest.run "spectral"
    [
      ( "matvec",
        [
          Alcotest.test_case "row sums" `Quick test_transition_rowsums;
          Alcotest.test_case "path action" `Quick test_transition_path;
          Alcotest.test_case "normalized symmetric" `Quick test_normalized_symmetry;
          Alcotest.test_case "stationary eigenvector" `Quick test_stationary_eigenvector;
          Alcotest.test_case "vector helpers" `Quick test_vector_helpers;
        ] );
      ( "eigen",
        [
          Alcotest.test_case "complete graphs" `Quick test_lambda_complete;
          Alcotest.test_case "odd cycle" `Quick test_lambda_odd_cycle;
          Alcotest.test_case "petersen" `Quick test_lambda_petersen;
          Alcotest.test_case "bipartite lambda = 1" `Quick test_lambda_bipartite_is_one;
          Alcotest.test_case "lazy gap hypercube" `Quick test_lazy_gap_hypercube;
          Alcotest.test_case "second eigenvector" `Quick test_second_eigenvector_residual;
          Alcotest.test_case "dense spectrum" `Quick test_dense_spectrum_known;
          Alcotest.test_case "singleton" `Quick test_singleton;
          QCheck_alcotest.to_alcotest power_vs_dense_test;
        ] );
      ( "conductance",
        [
          Alcotest.test_case "of_set" `Quick test_of_set;
          Alcotest.test_case "exact known" `Quick test_exact_known;
          QCheck_alcotest.to_alcotest sweep_upper_bounds_exact_test;
          QCheck_alcotest.to_alcotest cheeger_test;
        ] );
      ( "mixing",
        [
          Alcotest.test_case "tv basics" `Quick test_tv_basics;
          Alcotest.test_case "stationary" `Quick test_stationary;
          Alcotest.test_case "mass conserved" `Quick test_walk_distribution_mass;
          Alcotest.test_case "complete one step" `Quick test_mixing_complete;
          Alcotest.test_case "bipartite never (plain)" `Quick test_mixing_bipartite_never;
          Alcotest.test_case "spectral relation" `Quick test_mixing_spectral_relation;
          Alcotest.test_case "monotone decay" `Quick test_mixing_monotone_in_rounds;
          Alcotest.test_case "chebyshev = exact evolution" `Quick test_cheb_matches_exact_evolution;
          Alcotest.test_case "mixing_time_from bisection" `Quick test_mixing_time_from_bisection;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "lanczos = jacobi on zoo" `Quick test_lanczos_matches_jacobi;
          Alcotest.test_case "lanczos = power" `Quick test_lanczos_matches_power;
          Alcotest.test_case "sym_eig_qr = jacobi" `Quick test_sym_eig_qr_matches_jacobi;
          Alcotest.test_case "pool-width invariance" `Quick test_pool_width_invariance;
          Alcotest.test_case "typed not-converged" `Quick test_not_converged_typed;
          Alcotest.test_case "obs solver counters" `Quick test_obs_solver_counters;
          Alcotest.test_case "cg = dense oracle" `Quick test_cg_matches_dense_oracle;
        ] );
    ]
