(* Tests for the edge-list and DOT serialisation. *)

module Graph = Cobra_graph.Graph
module Gen = Cobra_graph.Gen
module Graph_io = Cobra_graph.Graph_io
module Rng = Cobra_prng.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_to_string_format () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check string) "format" "cobra-graph 3\n0 1\n1 2\n" (Graph_io.to_string g)

let test_roundtrip_basic () =
  let g = Gen.petersen () in
  let g2 = Graph_io.of_string (Graph_io.to_string g) in
  check_int "n" (Graph.n g) (Graph.n g2);
  Alcotest.(check (list (pair int int))) "edges" (Graph.edges g) (Graph.edges g2)

let test_parse_flexible () =
  let g = Graph_io.of_string "# a comment\n\ncobra-graph 4\n  2   1 \n# another\n3 0\n" in
  check_int "n" 4 (Graph.n g);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 3); (1, 2) ] (Graph.edges g)

(* Regression: the header used to be split on single spaces only, so
   "cobra-graph  4" (double space), a tab separator, or CRLF line
   endings failed even though edge lines tolerated all three. *)
let test_parse_header_whitespace () =
  let edges_of s = Graph.edges (Graph_io.of_string s) in
  Alcotest.(check (list (pair int int)))
    "double-space header" [ (0, 1) ] (edges_of "cobra-graph  4\n0 1\n");
  Alcotest.(check (list (pair int int)))
    "tab header" [ (0, 1) ] (edges_of "cobra-graph\t4\n0 1\n");
  Alcotest.(check (list (pair int int)))
    "leading/trailing blanks" [ (0, 1) ] (edges_of "  cobra-graph   4  \n0 1\n")

let test_parse_tabs_and_crlf () =
  let g = Graph_io.of_string "cobra-graph\t4\r\n0\t1\r\n2\t 3\r\n" in
  check_int "n" 4 (Graph.n g);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (2, 3) ] (Graph.edges g);
  (* Mixed runs of tabs and spaces within one line. *)
  let g = Graph_io.of_string "cobra-graph \t 3\n0 \t\t 2\n" in
  Alcotest.(check (list (pair int int))) "mixed separators" [ (0, 2) ] (Graph.edges g)

let test_parse_isolated_vertices () =
  let g = Graph_io.of_string "cobra-graph 5\n0 1\n" in
  check_int "n includes isolated" 5 (Graph.n g);
  check_int "m" 1 (Graph.m g)

let test_parse_errors () =
  let fails s =
    match Graph_io.of_string s with
    | exception Failure _ -> true
    | _ -> false
  in
  check_bool "empty" true (fails "");
  check_bool "bad header" true (fails "graph 3\n0 1\n");
  check_bool "bad count" true (fails "cobra-graph x\n");
  check_bool "bad token" true (fails "cobra-graph 3\n0 a\n");
  check_bool "triple token" true (fails "cobra-graph 3\n0 1 2\n");
  check_bool "self loop" true (fails "cobra-graph 3\n1 1\n");
  check_bool "out of range" true (fails "cobra-graph 3\n0 7\n")

let test_dot () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let dot = Graph_io.to_dot ~name:"demo" g in
  check_bool "has header" true (String.length dot > 0);
  let contains needle =
    let len = String.length needle in
    let rec go i =
      i + len <= String.length dot && (String.sub dot i len = needle || go (i + 1))
    in
    go 0
  in
  check_bool "graph name" true (contains "graph demo {");
  check_bool "edge syntax" true (contains "0 -- 1;");
  check_bool "closing" true (contains "}")

let test_file_roundtrip () =
  let g = Gen.hypercube 3 in
  let path = Filename.temp_file "cobra_test" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.write_file path g;
      let g2 = Graph_io.read_file path in
      Alcotest.(check (list (pair int int))) "file roundtrip" (Graph.edges g) (Graph.edges g2))

let test_roundtrip_all_families () =
  (* Every registry family serialises and parses back identically. *)
  let rng = Rng.create 77 in
  List.iter
    (fun family ->
      let g = Gen.by_name family ~n:40 rng in
      let g2 = Graph_io.of_string (Graph_io.to_string g) in
      if Graph.edges g <> Graph.edges g2 || Graph.n g <> Graph.n g2 then
        Alcotest.failf "roundtrip failed for %s" family)
    Gen.family_names

(* --- Streaming reader vs the eager string parser --- *)

let write_temp content =
  let path = Filename.temp_file "cobra_test_io" ".graph" in
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc;
  path

let with_temp content f =
  let path = write_temp content in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let check_same_csr msg expected actual =
  check_int (msg ^ ": n") (Graph.n expected) (Graph.n actual);
  Alcotest.(check (array int))
    (msg ^ ": offsets") (Graph.csr_offsets expected) (Graph.csr_offsets actual);
  Alcotest.(check (array int))
    (msg ^ ": adjacency") (Graph.csr_adjacency expected) (Graph.csr_adjacency actual)

let test_stream_equals_string () =
  (* The streaming channel reader and the eager of_string parser must
     build bit-identical CSR graphs from the same bytes. *)
  let rng = Rng.create 2020 in
  List.iter
    (fun family ->
      let g = Gen.by_name family ~n:60 rng in
      let text = Graph_io.to_string g in
      let eager = Graph_io.of_string text in
      let streamed =
        with_temp text (fun path ->
            let ic = open_in_bin path in
            Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Graph_io.read_channel ic))
      in
      check_same_csr family eager streamed)
    [ "hypercube"; "lollipop"; "ba:4"; "chunglu:2.5" ]

let test_stream_from_pipe () =
  (* read_file used to seek (in_channel_length + really_input_string),
     which cannot work on a pipe; the chunked reader must. *)
  let g = Gen.by_name "regular-8" ~n:64 (Rng.create 4) in
  let text = Graph_io.to_string g in
  with_temp text (fun path ->
      let ic = Unix.open_process_in ("cat " ^ Filename.quote path) in
      let streamed =
        Fun.protect
          ~finally:(fun () -> ignore (Unix.close_process_in ic))
          (fun () -> Graph_io.read_channel ic)
      in
      check_same_csr "pipe" (Graph_io.of_string text) streamed)

let test_snap_from_pipe () =
  let g = Gen.by_name "ba:3" ~n:100 (Rng.create 8) in
  with_temp (Graph_io.to_snap g) (fun path ->
      let ic = Unix.open_process_in ("cat " ^ Filename.quote path) in
      let streamed =
        Fun.protect
          ~finally:(fun () -> ignore (Unix.close_process_in ic))
          (fun () -> Graph_io.read_stream ic)
      in
      check_same_csr "snap pipe" g streamed)

let test_stream_torn_tail () =
  (* A final line without a trailing newline is complete data, not an
     error; a line torn mid-record (one token) is malformed. *)
  let g =
    with_temp "cobra-graph 4\n0 1\n2 3" (fun path ->
        let ic = open_in_bin path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Graph_io.read_channel ic))
  in
  Alcotest.(check (list (pair int int))) "no trailing newline" [ (0, 1); (2, 3) ] (Graph.edges g);
  Alcotest.check_raises "torn record" (Failure "") (fun () ->
      try
        ignore
          (with_temp "cobra-graph 4\n0 1\n2" (fun path ->
               let ic = open_in_bin path in
               Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Graph_io.read_channel ic)))
      with Failure _ -> raise (Failure ""))

let test_snap_roundtrip () =
  let g = Gen.petersen () in
  let streamed =
    with_temp (Graph_io.to_snap ~comment:"petersen" g) (fun path ->
        let ic = open_in_bin path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Graph_io.read_stream ic))
  in
  check_same_csr "snap roundtrip" g streamed

let test_stream_million_edges () =
  (* The ISSUE acceptance bar: a 10^6-edge list streams through the
     chunked reader and lands bit-for-bit on the eager path's CSR. *)
  let n = 125_009 and m = 8 in
  let g = Cobra_graph.Gen_extra.barabasi_albert ~n ~m (Rng.create 12) in
  check_bool "instance is above a million edges" true (Graph.m g >= 1_000_000);
  let streamed =
    with_temp (Graph_io.to_snap g) (fun path ->
        let ic = open_in_bin path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Graph_io.read_stream ic))
  in
  check_same_csr "million-edge stream" g streamed

let roundtrip_random_test =
  QCheck2.Test.make ~name:"string roundtrip on random graphs" ~count:60
    QCheck2.Gen.(pair (int_range 2 40) (list_size (int_bound 100) (pair (int_bound 39) (int_bound 39))))
    (fun (n, raw) ->
      let edges =
        List.filter_map
          (fun (u, v) ->
            let u = u mod n and v = v mod n in
            if u = v then None else Some (u, v))
          raw
      in
      let g = Graph.of_edges ~n edges in
      let g2 = Graph_io.of_string (Graph_io.to_string g) in
      Graph.n g = Graph.n g2 && Graph.edges g = Graph.edges g2)

let () =
  Alcotest.run "graph_io"
    [
      ( "unit",
        [
          Alcotest.test_case "to_string format" `Quick test_to_string_format;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_basic;
          Alcotest.test_case "flexible parse" `Quick test_parse_flexible;
          Alcotest.test_case "header whitespace" `Quick test_parse_header_whitespace;
          Alcotest.test_case "tabs and CRLF" `Quick test_parse_tabs_and_crlf;
          Alcotest.test_case "isolated vertices" `Quick test_parse_isolated_vertices;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "all families roundtrip" `Quick test_roundtrip_all_families;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "stream equals of_string" `Quick test_stream_equals_string;
          Alcotest.test_case "cobra from a pipe" `Quick test_stream_from_pipe;
          Alcotest.test_case "snap from a pipe" `Quick test_snap_from_pipe;
          Alcotest.test_case "torn tail" `Quick test_stream_torn_tail;
          Alcotest.test_case "snap roundtrip" `Quick test_snap_roundtrip;
          Alcotest.test_case "million-edge stream" `Slow test_stream_million_edges;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest roundtrip_random_test ]);
    ]
