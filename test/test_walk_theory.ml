(* Tests for the exact random-walk quantities, against closed forms and
   the Monte-Carlo walk engine. *)

module Graph = Cobra_graph.Graph
module Gen = Cobra_graph.Gen
module Rng = Cobra_prng.Rng
module Walk = Cobra_core.Walk
module Walk_theory = Cobra_core.Walk_theory

let check_bool = Alcotest.(check bool)
let check_float msg ?(eps = 1e-6) expected actual = Alcotest.(check (float eps)) msg expected actual

let test_path_hitting_closed_form () =
  (* On the path P_n, H(u, 0) = u^2 + (wait, with a reflecting end) ...
     the classical identity: hitting 0 from u on P_n is u * (2(n-1) - u)
     ... verified against the gambler's-ruin derivation below for
     concrete sizes. *)
  (* For the path 0-1-2, by direct solution: h(1) = 1 + h(2)/2... solve:
     h(2) = 1 + h(1); h(1) = 1 + (0 + h(2))/2 => h(1) = 3, h(2) = 4. *)
  let h = Walk_theory.hitting_times (Gen.path 3) ~target:0 in
  check_float "h(0)" 0.0 h.(0);
  check_float "h(1)" 3.0 h.(1);
  check_float "h(2)" 4.0 h.(2)

let test_path_end_to_end () =
  (* End-to-end hitting on P_n equals (n-1)^2. *)
  List.iter
    (fun n ->
      let h = Walk_theory.hitting_times (Gen.path n) ~target:0 in
      check_float
        (Printf.sprintf "P%d end-to-end" n)
        ~eps:1e-5
        (float_of_int ((n - 1) * (n - 1)))
        h.(n - 1))
    [ 4; 8; 16; 32 ]

let test_complete_hitting () =
  (* On K_n, hitting any specific vertex is geometric: E = n - 1. *)
  let h = Walk_theory.hitting_times (Gen.complete 9) ~target:3 in
  for u = 0 to 8 do
    if u <> 3 then check_float "K9 hitting" 8.0 h.(u)
  done

let test_cycle_hitting () =
  (* On C_n, H(u, 0) = k (n - k) for distance k. *)
  let n = 10 in
  let h = Walk_theory.hitting_times (Gen.cycle n) ~target:0 in
  for u = 1 to n - 1 do
    let k = min u (n - u) in
    check_float (Printf.sprintf "C10 from %d" u) ~eps:1e-5 (float_of_int (k * (n - k))) h.(u)
  done

let test_commute_time_electrical () =
  (* Commute time = 2 m R_eff.  Path P_n between the ends: R_eff = n-1,
     m = n-1, so commute = 2 (n-1)^2. *)
  let n = 12 in
  check_float "path commute" ~eps:1e-4
    (2.0 *. float_of_int ((n - 1) * (n - 1)))
    (Walk_theory.commute_time (Gen.path n) 0 (n - 1));
  (* K_n between any pair: R_eff = 2/n, m = n(n-1)/2 -> commute = 2(n-1). *)
  check_float "K8 commute" ~eps:1e-5 14.0 (Walk_theory.commute_time (Gen.complete 8) 1 5)

let test_harmonic () =
  check_float "H_0" 0.0 (Walk_theory.harmonic 0);
  check_float "H_1" 1.0 (Walk_theory.harmonic 1);
  check_float "H_4" (25.0 /. 12.0) (Walk_theory.harmonic 4)

let test_matthews_sandwich_monte_carlo () =
  (* Measured walk cover times must respect Matthews' bounds. *)
  List.iter
    (fun (name, g) ->
      let upper = Walk_theory.matthews_upper g in
      let lower = Walk_theory.matthews_lower g in
      check_bool (name ^ ": bounds ordered") true (lower <= upper);
      let trials = 200 in
      let sum = ref 0.0 in
      for seed = 1 to trials do
        match Walk.cover_time g (Rng.create seed) ~start:0 () with
        | Some s -> sum := !sum +. float_of_int s
        | None -> Alcotest.fail "censored walk"
      done;
      let mean = !sum /. float_of_int trials in
      check_bool
        (Printf.sprintf "%s: mean %.1f <= Matthews upper %.1f" name mean upper)
        true (mean <= upper *. 1.05);
      (* The start-specific cover can undershoot the pair-minimum bound
         only through MC noise; allow ample slack. *)
      check_bool
        (Printf.sprintf "%s: mean %.1f vs lower %.1f" name mean lower)
        true
        (mean >= 0.5 *. lower))
    [
      ("K16", Gen.complete 16); ("C14", Gen.cycle 14); ("P10", Gen.path 10);
      ("petersen", Gen.petersen ());
    ]

let test_dense_matches_iterative () =
  (* The dense L^+ oracle and the per-target CG route agree on every
     pair.  [all_hitting_times_dense] keeps this an independent check —
     [all_hitting_times] itself now runs CG. *)
  List.iter
    (fun g ->
      let n = Graph.n g in
      let dense = Walk_theory.all_hitting_times_dense g in
      for target = 0 to n - 1 do
        let iter = Walk_theory.hitting_times g ~target in
        for u = 0 to n - 1 do
          if Float.abs (iter.(u) -. dense.(u).(target)) > 1e-5 then
            Alcotest.failf "H(%d, %d): iterative %.6f vs dense %.6f" u target iter.(u)
              dense.(u).(target)
        done
      done)
    [ Gen.petersen (); Gen.lollipop ~clique:4 ~tail:3; Gen.wheel 8 ]

let test_effective_resistance () =
  (* Path: resistors in series. *)
  check_float "P5 ends" ~eps:1e-9 4.0 (Walk_theory.effective_resistance (Gen.path 5) 0 4);
  check_float "P5 middle" ~eps:1e-9 2.0 (Walk_theory.effective_resistance (Gen.path 5) 0 2);
  (* Cycle: parallel paths k and n-k. *)
  let n = 8 and k = 3 in
  check_float "C8 distance 3" ~eps:1e-9
    (float_of_int (k * (n - k)) /. float_of_int n)
    (Walk_theory.effective_resistance (Gen.cycle n) 0 k);
  (* K_n: 2/n. *)
  check_float "K10" ~eps:1e-9 0.2 (Walk_theory.effective_resistance (Gen.complete 10) 2 7)

let test_validation () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Walk_theory.hitting_times: graph must be connected") (fun () ->
      ignore (Walk_theory.hitting_times (Graph.of_edges ~n:3 [ (0, 1) ]) ~target:0));
  Alcotest.check_raises "bad target"
    (Invalid_argument "Walk_theory.hitting_times: target out of range") (fun () ->
      ignore (Walk_theory.hitting_times (Gen.path 3) ~target:5))

let hitting_vs_simulation_property =
  QCheck2.Test.make ~name:"exact hitting matches simulated walk" ~count:10
    QCheck2.Gen.(pair (int_range 4 12) (int_bound 1000))
    (fun (n, seed) ->
      let g = Gen.random_tree ~n (Rng.create seed) in
      let exact = (Walk_theory.hitting_times g ~target:0).(n - 1) in
      (* Simulate hitting times of vertex 0 from n-1. *)
      let rng = Rng.create (seed + 99) in
      let trials = 2000 in
      let total = ref 0 in
      for _ = 1 to trials do
        let pos = ref (n - 1) in
        let steps = ref 0 in
        while !pos <> 0 do
          incr steps;
          pos := Graph.random_neighbor g rng !pos
        done;
        total := !total + !steps
      done;
      let mc = float_of_int !total /. float_of_int trials in
      (* Hitting times on trees have stddev of order the mean, so allow
         a generous band. *)
      Float.abs (mc -. exact) < 0.25 *. exact +. 2.0)

let () =
  Alcotest.run "walk_theory"
    [
      ( "hitting times",
        [
          Alcotest.test_case "P3 by hand" `Quick test_path_hitting_closed_form;
          Alcotest.test_case "path end-to-end" `Quick test_path_end_to_end;
          Alcotest.test_case "complete" `Quick test_complete_hitting;
          Alcotest.test_case "cycle" `Quick test_cycle_hitting;
          Alcotest.test_case "commute = electrical" `Quick test_commute_time_electrical;
          Alcotest.test_case "harmonic numbers" `Quick test_harmonic;
          Alcotest.test_case "dense = iterative" `Quick test_dense_matches_iterative;
          Alcotest.test_case "effective resistance" `Quick test_effective_resistance;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "matthews",
        [
          Alcotest.test_case "sandwich vs MC" `Slow test_matthews_sandwich_monte_carlo;
          QCheck_alcotest.to_alcotest hitting_vs_simulation_property;
        ] );
    ]
