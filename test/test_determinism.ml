(* Golden determinism tests.

   The simulation kernels (Bitset iteration/sampling, Process steps, the
   Cobra/Bips/Sis run loops) are performance-tuned under a hard contract:
   for a fixed seed they must draw RNG values in exactly the same order,
   and therefore produce bit-identical runs, as the straightforward
   implementations they replaced.  These tests pin entire run
   fingerprints (round counts, transmission counts and trajectory
   hashes) to golden values recorded from the pre-optimisation kernels,
   across graph families and branching variants.

   Run the executable with `--dump` to print the current fingerprints in
   the form of the [goldens] list below; only update the list when a
   change to the RNG draw order is both intended and understood. *)

module Gen = Cobra_graph.Gen
module Bitset = Cobra_bitset.Bitset
module Rng = Cobra_prng.Rng
module Process = Cobra_core.Process
module Cobra = Cobra_core.Cobra
module Bips = Cobra_core.Bips
module Sis = Cobra_core.Sis

(* Order-sensitive polynomial hash, kept in the non-negative int range. *)
let hash_ints init xs = Array.fold_left (fun h x -> ((h * 1000003) + x) land max_int) init xs

let cobra_fp g ~seed ~branching ~lazy_ =
  let rng = Rng.create seed in
  match Cobra.run_cover_detailed g rng ~branching ~lazy_ ~start:0 () with
  | None -> "censored"
  | Some (r : Cobra.run) ->
      Printf.sprintf "rounds=%d tx=%d vh=%d ah=%d" r.rounds r.transmissions
        (hash_ints 17 r.visited_sizes) (hash_ints 17 r.active_sizes)

let hitting_fp g ~seed ~start ~target =
  let rng = Rng.create seed in
  let start = Bitset.of_list (Cobra_graph.Graph.n g) start in
  match Cobra.hitting_time g rng ~start ~target () with
  | None -> "censored"
  | Some t -> Printf.sprintf "hit=%d" t

let bips_fp g ~seed ~branching ~lazy_ =
  let rng = Rng.create seed in
  match Bips.run_trajectory g rng ~branching ~lazy_ ~source:0 () with
  | None -> "censored"
  | Some (t : Bips.trajectory) ->
      Printf.sprintf "rounds=%d sh=%d ch=%d" t.rounds (hash_ints 17 t.sizes)
        (hash_ints 17 t.candidate_sizes)

let sis_fp g ~seed ~initial =
  let rng = Rng.create seed in
  let initial = Bitset.of_list (Cobra_graph.Graph.n g) initial in
  let outcome, sizes = Sis.run_trajectory g rng ~initial () in
  let o =
    match outcome with
    | Sis.Extinct r -> Printf.sprintf "extinct@%d" r
    | Sis.Saturated r -> Printf.sprintf "saturated@%d" r
    | Sis.Censored -> "censored"
  in
  Printf.sprintf "%s sh=%d" o (hash_ints 17 sizes)

let without_replacement_fp g ~seed ~rounds =
  let rng = Rng.create seed in
  let n = Cobra_graph.Graph.n g in
  let current = Bitset.of_list n [ 0 ] and next = Bitset.create n in
  let h = ref 17 and tx = ref 0 in
  for _ = 1 to rounds do
    tx := !tx + Process.cobra_step_without_replacement g rng ~b:2 ~current ~next;
    Bitset.blit ~src:next ~dst:current;
    h := hash_ints !h (Bitset.to_array current)
  done;
  Printf.sprintf "tx=%d h=%d" !tx !h

(* Graph instances are fixed once; generator randomness uses its own
   dedicated seeds so case fingerprints depend only on the run seed. *)
let hypercube6 = Gen.hypercube 6
let torus8 = Gen.torus ~dims:[ 8; 8 ]
let cycle63 = Gen.cycle 63 (* capacity on a bitset word boundary *)
let complete33 = Gen.complete 33
let lollipop16 = Gen.lollipop ~clique:16 ~tail:17
let regular4_64 = Gen.random_regular ~n:64 ~r:4 (Rng.create 42)
let petersen = Gen.petersen ()

let cases =
  [
    ("cobra hypercube6 b=2", fun () -> cobra_fp hypercube6 ~seed:101 ~branching:(Process.Fixed 2) ~lazy_:false);
    ("cobra hypercube6 b=1", fun () -> cobra_fp hypercube6 ~seed:102 ~branching:(Process.Fixed 1) ~lazy_:false);
    ("cobra torus8 b=2", fun () -> cobra_fp torus8 ~seed:103 ~branching:(Process.Fixed 2) ~lazy_:false);
    ("cobra torus8 rho=0.5", fun () -> cobra_fp torus8 ~seed:104 ~branching:(Process.Bernoulli 0.5) ~lazy_:false);
    ("cobra cycle63 b=2", fun () -> cobra_fp cycle63 ~seed:105 ~branching:(Process.Fixed 2) ~lazy_:false);
    ("cobra complete33 b=2", fun () -> cobra_fp complete33 ~seed:106 ~branching:(Process.Fixed 2) ~lazy_:false);
    ("cobra lollipop16 b=2 lazy", fun () -> cobra_fp lollipop16 ~seed:107 ~branching:(Process.Fixed 2) ~lazy_:true);
    ("cobra regular4-64 b=3", fun () -> cobra_fp regular4_64 ~seed:108 ~branching:(Process.Fixed 3) ~lazy_:false);
    ("cobra regular4-64 rho=0.25 lazy", fun () -> cobra_fp regular4_64 ~seed:109 ~branching:(Process.Bernoulli 0.25) ~lazy_:true);
    ("hitting torus8 {0,5}->37", fun () -> hitting_fp torus8 ~seed:110 ~start:[ 0; 5 ] ~target:37);
    ("bips hypercube6 b=2", fun () -> bips_fp hypercube6 ~seed:111 ~branching:(Process.Fixed 2) ~lazy_:false);
    ("bips regular4-64 rho=0.5", fun () -> bips_fp regular4_64 ~seed:112 ~branching:(Process.Bernoulli 0.5) ~lazy_:false);
    ("sis petersen {0,3}", fun () -> sis_fp petersen ~seed:113 ~initial:[ 0; 3 ]);
    ("without-replacement regular4-64", fun () -> without_replacement_fp regular4_64 ~seed:114 ~rounds:10);
  ]

(* Golden fingerprints recorded from the pre-overhaul kernels (naive
   bit-position scan, Kernighan popcount, blit-based double buffering). *)
let goldens =
  [
    ("cobra hypercube6 b=2", "rounds=18 tx=648 vh=3120599584409585267 ah=1913051902766680728");
    ("cobra hypercube6 b=1", "rounds=371 tx=371 vh=2760857257187678709 ah=2908620302129387305");
    ("cobra torus8 b=2", "rounds=14 tx=382 vh=3382088494225040947 ah=4269205526142410250");
    ("cobra torus8 rho=0.5", "rounds=37 tx=532 vh=109494673368098345 ah=3945428372495495510");
    ("cobra cycle63 b=2", "rounds=68 tx=1884 vh=3980022990633351199 ah=403722297397082366");
    ("cobra complete33 b=2", "rounds=7 tx=126 vh=192245933757434317 ah=1460053766362799388");
    ("cobra lollipop16 b=2 lazy", "rounds=43 tx=1392 vh=2791285245653955524 ah=3517036198693714690");
    ("cobra regular4-64 b=3", "rounds=9 tx=591 vh=4150945407640371785 ah=3805471154177216517");
    ("cobra regular4-64 rho=0.25 lazy", "rounds=49 tx=685 vh=2997666809807422842 ah=438059867749807446");
    ("hitting torus8 {0,5}->37", "hit=7");
    ("bips hypercube6 b=2", "rounds=10 sh=2782120981871621009 ch=2728677701870901673");
    ("bips regular4-64 rho=0.5", "rounds=19 sh=1303207243444247840 ch=4231581553203299840");
    ("sis petersen {0,3}", "saturated@6 sh=2057568817579931575");
    ("without-replacement regular4-64", "tx=446 h=1781576821614043868");
  ]

let dump () =
  List.iter (fun (name, fp) -> Printf.printf "    (%S, %S);\n" name (fp ())) cases

let test_golden (name, fp) golden () = Alcotest.(check string) name golden (fp ())

(* --- RNG stream alignment across branching variants ---

   [Rng.bernoulli] consumes no state at p = 0 or p = 1 (see rng.mli), so
   a [Bernoulli 1.0] run must replay draw-for-draw as [Fixed 2] and
   [Bernoulli 0.0] as [Fixed 1] — whole runs, not just distributions. *)

let check_variant_alignment g ~seed ~lazy_ ~degenerate ~fixed () =
  let fp branching = cobra_fp g ~seed ~branching ~lazy_ in
  Alcotest.(check string) "degenerate Bernoulli replays as Fixed" (fp (Process.Fixed fixed))
    (fp (Process.Bernoulli degenerate))

let test_bernoulli_degenerate_consumes_nothing () =
  let rng = Rng.create 2024 in
  let witness = Cobra_prng.Xoshiro.copy rng in
  Alcotest.(check bool) "p=1 is true" true (Rng.bernoulli rng 1.0);
  Alcotest.(check bool) "p=0 is false" false (Rng.bernoulli rng 0.0);
  for i = 1 to 100 do
    Alcotest.(check int)
      (Printf.sprintf "draw %d aligned" i)
      (Rng.int_below witness 1_000_003) (Rng.int_below rng 1_000_003)
  done

let alignment_tests =
  [
    Alcotest.test_case "bernoulli p∈{0,1} consumes no state" `Quick
      test_bernoulli_degenerate_consumes_nothing;
    Alcotest.test_case "Bernoulli 1.0 ≡ Fixed 2 (hypercube)" `Quick
      (check_variant_alignment hypercube6 ~seed:201 ~lazy_:false ~degenerate:1.0 ~fixed:2);
    Alcotest.test_case "Bernoulli 0.0 ≡ Fixed 1 (torus)" `Quick
      (check_variant_alignment torus8 ~seed:202 ~lazy_:false ~degenerate:0.0 ~fixed:1);
    Alcotest.test_case "Bernoulli 1.0 ≡ Fixed 2 (lollipop, lazy)" `Quick
      (check_variant_alignment lollipop16 ~seed:203 ~lazy_:true ~degenerate:1.0 ~fixed:2);
  ]

let () =
  if Array.exists (( = ) "--dump") Sys.argv then dump ()
  else begin
    if List.length goldens <> List.length cases then
      failwith "test_determinism: goldens out of sync with cases (run with --dump)";
    Alcotest.run "determinism"
      [
        ( "golden runs",
          List.map2
            (fun (name, fp) (gname, golden) ->
              if name <> gname then failwith "test_determinism: case/golden order mismatch";
              Alcotest.test_case name `Quick (test_golden (name, fp) golden))
            cases goldens );
        ("stream alignment", alignment_tests);
      ]
  end
