(* Tests for the web-scale graph layer: the incremental CSR Builder, the
   Chung-Lu / configuration-model power-law generators, the repaired
   Barabasi-Albert generator, giant-component extraction, the tail
   exponent estimator, and the parameterized family strings. *)

module Graph = Cobra_graph.Graph
module Builder = Cobra_graph.Builder
module Chung_lu = Cobra_graph.Chung_lu
module Gen = Cobra_graph.Gen
module Gen_extra = Cobra_graph.Gen_extra
module Props = Cobra_graph.Props
module Graph_io = Cobra_graph.Graph_io
module Rng = Cobra_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let check_graph_equal msg expected actual =
  check_int (msg ^ ": n") (Graph.n expected) (Graph.n actual);
  check_int (msg ^ ": m") (Graph.m expected) (Graph.m actual);
  Alcotest.(check (array int))
    (msg ^ ": offsets") (Graph.csr_offsets expected) (Graph.csr_offsets actual);
  Alcotest.(check (array int))
    (msg ^ ": adjacency") (Graph.csr_adjacency expected) (Graph.csr_adjacency actual)

(* --- Builder --- *)

(* The load-bearing claim of builder.mli: over any edge multiset the
   counting-sort path produces bit-identical CSR arrays to the
   tuple-array path.  Exercised over many random multisets with heavy
   duplication (both orientations) and skewed endpoints. *)
let test_builder_matches_of_edge_array () =
  let rng = Rng.create 99 in
  for trial = 1 to 50 do
    let n = 2 + Rng.int_below rng 40 in
    let m = Rng.int_below rng 200 in
    let edges =
      Array.init m (fun _ ->
          let u = Rng.int_below rng n in
          let v = (u + 1 + Rng.int_below rng (n - 1)) mod n in
          (* Half the draws duplicate in reversed orientation space by
             construction; squaring u skews the endpoint distribution. *)
          if Rng.bool rng then (u, v) else (v, u))
    in
    let b = Builder.create ~n () in
    Array.iter (fun (u, v) -> Builder.add_edge b u v) edges;
    check_graph_equal
      (Printf.sprintf "trial %d" trial)
      (Graph.of_edge_array ~n edges) (Builder.finish b)
  done

let test_builder_autogrow () =
  let b = Builder.create () in
  Builder.add_edge b 0 7;
  Builder.add_edge b 3 2;
  check_int "vertex_count tracks max id" 8 (Builder.vertex_count b);
  check_int "edge_count" 2 (Builder.edge_count b);
  let g = Builder.finish b in
  check_int "n = 1 + max id" 8 (Graph.n g);
  check_int "m" 2 (Graph.m g)

let test_builder_dedup_and_sort () =
  let b = Builder.create ~n:4 () in
  List.iter
    (fun (u, v) -> Builder.add_edge b u v)
    [ (3, 1); (1, 3); (0, 2); (3, 1); (2, 0); (0, 1) ];
  let g = Builder.finish b in
  check_int "m after dedup" 3 (Graph.m g);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (0, 2); (1, 3) ] (Graph.edges g);
  Alcotest.(check (array int)) "sorted slice" [| 1; 2 |] (Graph.neighbors g 0)

let test_builder_errors () =
  let raises msg f = Alcotest.check_raises msg (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))
  in
  raises "self-loop" (fun () -> Builder.add_edge (Builder.create ()) 2 2);
  raises "negative endpoint" (fun () -> Builder.add_edge (Builder.create ()) (-1) 2);
  raises "out of range (fixed n)" (fun () -> Builder.add_edge (Builder.create ~n:3 ()) 0 3);
  raises "negative n" (fun () -> ignore (Builder.create ~n:(-1) ()));
  raises "finish twice" (fun () ->
      let b = Builder.create ~n:2 () in
      Builder.add_edge b 0 1;
      ignore (Builder.finish b);
      ignore (Builder.finish b));
  raises "add after finish" (fun () ->
      let b = Builder.create ~n:2 () in
      ignore (Builder.finish b);
      Builder.add_edge b 0 1)

let test_builder_of_edge_seq () =
  let edges = List.to_seq [ (0, 1); (1, 2); (0, 1) ] in
  let g = Builder.of_edge_seq ~n:5 edges in
  check_int "n respects fixed bound" 5 (Graph.n g);
  check_int "m deduped" 2 (Graph.m g)

(* --- Barabasi-Albert (repaired) --- *)

(* Exactly m distinct attachments per post-seed vertex: the old
   bounded-guard sampler silently under-attached on dense graphs. *)
let test_ba_exact_edge_count () =
  List.iter
    (fun (n, m) ->
      let g = Gen_extra.barabasi_albert ~n ~m (Rng.create 5) in
      let expected = (m * (m + 1) / 2) + (m * (n - m - 1)) in
      check_int (Printf.sprintf "m for n=%d m=%d" n m) expected (Graph.m g);
      check_int "n" n (Graph.n g);
      (* Every vertex ends with degree >= m: the m it attached with, or
         (seed clique) m from the clique plus later attachments. *)
      check_bool "min degree >= m" true (Graph.min_degree g >= m);
      check_bool "connected" true (Props.is_connected g))
    [ (50, 1); (50, 5); (40, 20); (30, 28) ]

let test_ba_large_smoke () =
  (* The regression that motivated the rewrite: the old quadratic
     refresh made this size take minutes; now it is well under a
     second, with the exact count. *)
  let n = 30_000 and m = 8 in
  let g = Gen_extra.barabasi_albert ~n ~m (Rng.create 17) in
  check_int "exact m" ((m * (m + 1) / 2) + (m * (n - m - 1))) (Graph.m g);
  check_bool "connected" true (Props.is_connected g)

let test_ba_tail_exponent () =
  let g = Gen_extra.barabasi_albert ~n:20_000 ~m:4 (Rng.create 31) in
  match Props.degree_tail_exponent ~dmin:4 g with
  | None -> Alcotest.fail "no tail estimate on a BA graph"
  | Some gamma ->
      check_bool
        (Printf.sprintf "BA tail exponent %.3f in (2.2, 3.8)" gamma)
        true
        (gamma > 2.2 && gamma < 3.8)

(* --- Chung-Lu --- *)

let test_power_law_weights () =
  let w = Chung_lu.power_law_weights ~n:100 ~exponent:2.5 () in
  check_int "length" 100 (Array.length w);
  check_bool "decreasing" true
    (Array.for_all Fun.id (Array.init 99 (fun i -> w.(i) >= w.(i + 1))));
  Alcotest.(check (float 1e-9)) "wmin at the tail" 1.0 w.(99);
  Alcotest.check_raises "exponent <= 1" (Invalid_argument "") (fun () ->
      try ignore (Chung_lu.power_law_weights ~n:10 ~exponent:1.0 ())
      with Invalid_argument _ -> raise (Invalid_argument ""))

let test_chunglu_degrees_and_tail () =
  let n = 20_000 in
  let g = Chung_lu.power_law ~n ~exponent:2.5 (Rng.create 7) in
  check_int "n" n (Graph.n g);
  let avg = 2.0 *. float_of_int (Graph.m g) /. float_of_int n in
  check_bool
    (Printf.sprintf "average degree %.2f within [6, 10]" avg)
    true
    (avg > 6.0 && avg < 10.0);
  match Props.degree_tail_exponent g with
  | None -> Alcotest.fail "no tail estimate on a Chung-Lu graph"
  | Some gamma ->
      check_bool
        (Printf.sprintf "tail exponent %.3f in (2.0, 3.2)" gamma)
        true
        (gamma > 2.0 && gamma < 3.2)

let test_chunglu_avg_degree_param () =
  let g = Chung_lu.power_law ~n:10_000 ~exponent:2.7 ~avg_degree:4.0 (Rng.create 9) in
  let avg = 2.0 *. float_of_int (Graph.m g) /. float_of_int (Graph.n g) in
  check_bool (Printf.sprintf "average degree %.2f within [2.8, 5.2]" avg) true
    (avg > 2.8 && avg < 5.2)

(* --- Configuration model --- *)

let test_power_law_degrees () =
  let degs = Chung_lu.power_law_degrees ~n:5_001 ~exponent:2.5 ~dmin:2 (Rng.create 3) in
  check_int "length" 5_001 (Array.length degs);
  check_int "even sum" 0 (Array.fold_left ( + ) 0 degs mod 2);
  check_bool "within bounds" true (Array.for_all (fun d -> d >= 2 && d <= 5_000) degs)

let test_configuration_model () =
  let rng = Rng.create 13 in
  let degs = Chung_lu.power_law_degrees ~n:2_000 ~exponent:2.5 ~dmin:2 rng in
  let g = Chung_lu.configuration_model ~degrees:degs rng in
  check_int "n" 2_000 (Graph.n g);
  (* Erasure only removes stubs, so realised degree <= prescription. *)
  check_bool "degrees bounded by prescription" true
    (Array.for_all Fun.id (Array.init 2_000 (fun u -> Graph.degree g u <= degs.(u))));
  let sum = Array.fold_left ( + ) 0 degs in
  check_bool "few stubs erased" true (2 * Graph.m g > sum * 9 / 10);
  Alcotest.check_raises "odd degree sum" (Invalid_argument "") (fun () ->
      try ignore (Chung_lu.configuration_model ~degrees:[| 1; 1; 1 |] (Rng.create 1))
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* --- Giant component extraction --- *)

let test_largest_component () =
  (* K5 on {0..4} and K3 on {5..7}. *)
  let edges = ref [] in
  for u = 0 to 4 do
    for v = u + 1 to 4 do
      edges := (u, v) :: !edges
    done
  done;
  for u = 5 to 7 do
    for v = u + 1 to 7 do
      edges := (u, v) :: !edges
    done
  done;
  let g = Graph.of_edges ~n:8 !edges in
  let giant = Props.largest_component g in
  check_int "giant n" 5 (Graph.n giant);
  check_int "giant m" 10 (Graph.m giant);
  check_bool "giant is the clique" true (Graph.is_regular giant && Graph.max_degree giant = 4)

let test_largest_component_connected_identity () =
  let g = Gen.petersen () in
  check_bool "connected graph returned as-is" true (Props.largest_component g == g)

let test_largest_component_tie_break () =
  (* Two components of equal size: the one containing vertex 0 wins. *)
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let giant = Props.largest_component g in
  check_int "n" 2 (Graph.n giant);
  (* Renumbered densely: the surviving edge is (0, 1) of the first pair. *)
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1) ] (Graph.edges giant)

let test_tail_exponent_none_on_regular () =
  check_bool "regular graph has no tail" true
    (Props.degree_tail_exponent (Gen.hypercube 6) = None)

(* --- Streaming ingest: remap and self-loops --- *)

let with_string_input s f =
  let path = Filename.temp_file "cobra_test_webscale" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc s;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic))

let test_read_stream_remap () =
  let input = "# sparse ids\n10\t20\n20\t30\n10\t30\n" in
  let g_raw = with_string_input input (fun ic -> Graph_io.read_stream ic) in
  check_int "raw n = 1 + max id" 31 (Graph.n g_raw);
  check_int "raw m" 3 (Graph.m g_raw);
  let g, stats = with_string_input input (fun ic -> Graph_io.read_stream_stats ~remap:true ic) in
  check_int "remapped n" 3 (Graph.n g);
  check_int "remapped m" 3 (Graph.m g);
  check_int "distinct ids assigned" 3 stats.Graph_io.remapped_ids;
  check_int "edge lines" 3 stats.Graph_io.edge_lines;
  check_int "comments" 1 stats.Graph_io.comments;
  (* First-seen order: 10 -> 0, 20 -> 1, 30 -> 2, so the triangle is
     exactly {01, 02, 12}. *)
  Alcotest.(check (list (pair int int)))
    "first-seen renumbering" [ (0, 1); (0, 2); (1, 2) ] (Graph.edges g)

let test_read_stream_self_loops () =
  let input = "0 1\n1 1\n1 2\n" in
  let g, stats = with_string_input input (fun ic -> Graph_io.read_stream_stats ic) in
  check_int "self-loop dropped" 2 (Graph.m g);
  check_int "dropped count" 1 stats.Graph_io.self_loops;
  Alcotest.check_raises "strict mode raises" (Failure "") (fun () ->
      try ignore (with_string_input input (fun ic -> Graph_io.read_stream ~drop_self_loops:false ic))
      with Failure _ -> raise (Failure ""))

let test_read_stream_negative_without_remap () =
  Alcotest.check_raises "negative id" (Failure "") (fun () ->
      try ignore (with_string_input "0 1\n-2 3\n" (fun ic -> Graph_io.read_stream ic))
      with Failure _ -> raise (Failure ""))

(* --- Parameterized family strings --- *)

let test_by_name_parameterized () =
  let rng () = Rng.create 41 in
  let cl = Gen.by_name "chunglu:2.5" ~n:2_000 (rng ()) in
  check_bool "chunglu connected (giant extracted)" true (Props.is_connected cl);
  check_bool "chunglu nontrivial" true (Graph.n cl > 1_000);
  let cl6 = Gen.by_name "chunglu:2.5:4" ~n:2_000 (rng ()) in
  check_bool "chunglu avg-degree param accepted" true (Graph.m cl6 < Graph.m cl);
  let cm = Gen.by_name "config:2.5" ~n:2_000 (rng ()) in
  check_bool "config connected (giant extracted)" true (Props.is_connected cm);
  let ba = Gen.by_name "ba:4" ~n:500 (rng ()) in
  check_int "ba n" 500 (Graph.n ba);
  check_int "ba m exact" ((4 * 5 / 2) + (4 * 495)) (Graph.m ba)

let test_by_name_bad_params () =
  let raises msg name = Alcotest.check_raises msg (Invalid_argument "") (fun () ->
      try ignore (Gen.by_name name ~n:100 (Rng.create 1))
      with Invalid_argument _ -> raise (Invalid_argument ""))
  in
  raises "non-numeric exponent" "chunglu:abc";
  raises "empty param" "ba:";
  raises "unknown family" "nope:1";
  raises "exponent at 1" "chunglu:1.0";
  raises "too many params" "ba:4:5"

let test_family_names_include_parameterized () =
  List.iter
    (fun name ->
      check_bool (name ^ " listed") true (List.mem name Gen.family_names))
    [ "chunglu:2.5"; "config:2.5"; "ba:4" ]

let () =
  Alcotest.run "webscale"
    [
      ( "builder",
        [
          Alcotest.test_case "matches of_edge_array" `Quick test_builder_matches_of_edge_array;
          Alcotest.test_case "auto-grow" `Quick test_builder_autogrow;
          Alcotest.test_case "dedup and sort" `Quick test_builder_dedup_and_sort;
          Alcotest.test_case "errors" `Quick test_builder_errors;
          Alcotest.test_case "of_edge_seq" `Quick test_builder_of_edge_seq;
        ] );
      ( "barabasi-albert",
        [
          Alcotest.test_case "exact edge count" `Quick test_ba_exact_edge_count;
          Alcotest.test_case "large smoke" `Quick test_ba_large_smoke;
          Alcotest.test_case "tail exponent" `Quick test_ba_tail_exponent;
        ] );
      ( "chung-lu",
        [
          Alcotest.test_case "weight sequence" `Quick test_power_law_weights;
          Alcotest.test_case "degrees and tail" `Quick test_chunglu_degrees_and_tail;
          Alcotest.test_case "avg degree param" `Quick test_chunglu_avg_degree_param;
        ] );
      ( "configuration-model",
        [
          Alcotest.test_case "power-law degrees" `Quick test_power_law_degrees;
          Alcotest.test_case "erased matching" `Quick test_configuration_model;
        ] );
      ( "components",
        [
          Alcotest.test_case "largest component" `Quick test_largest_component;
          Alcotest.test_case "connected identity" `Quick test_largest_component_connected_identity;
          Alcotest.test_case "tie break" `Quick test_largest_component_tie_break;
          Alcotest.test_case "tail exponent none" `Quick test_tail_exponent_none_on_regular;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "remap" `Quick test_read_stream_remap;
          Alcotest.test_case "self-loops" `Quick test_read_stream_self_loops;
          Alcotest.test_case "negative ids" `Quick test_read_stream_negative_without_remap;
        ] );
      ( "families",
        [
          Alcotest.test_case "parameterized names" `Quick test_by_name_parameterized;
          Alcotest.test_case "bad params" `Quick test_by_name_bad_params;
          Alcotest.test_case "names listed" `Quick test_family_names_include_parameterized;
        ] );
    ]
