(* Tests for the packed int32 CSR storage and the .cgr binary format.

   The load-bearing claim of graph.mli: packed and boxed storages are
   observationally identical through every accessor, so for a fixed
   seed every simulation, solver and serialisation result is
   bit-identical whichever representation backs the graph.  Exercised
   here across the generator zoo (which mixes storages by construction:
   classic families build boxed via of_edge_array, Builder-based
   power-law families come out packed), through the kernels
   (cobra/bips, sequential and keyed), through the CG hitting-time
   solver, and through a .cgr write -> eager load -> mmap load round
   trip including torn-file rejection. *)

module Graph = Cobra_graph.Graph
module Gen = Cobra_graph.Gen
module Cgr = Cobra_graph.Cgr
module Graph_io = Cobra_graph.Graph_io
module Process = Cobra_core.Process
module Walk_theory = Cobra_core.Walk_theory
module Props = Cobra_graph.Props
module Bitset = Cobra_bitset.Bitset
module Rng = Cobra_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The zoo: every family string here is deterministic under the fixed
   seed, and the list deliberately spans both construction paths. *)
let zoo =
  [
    ("hypercube", 64);
    ("torus2d", 64);
    ("complete", 24);
    ("cycle", 63);
    ("lollipop", 40);
    ("regular-8", 96);
    ("gnp", 80);
    ("binary-tree", 31);
    ("petersen", 10);
    ("ba:4", 200);
    ("chunglu:2.5", 200);
    ("config:2.5", 200);
  ]

let zoo_graphs () =
  List.map (fun (fam, n) -> (fam, Gen.by_name fam ~n (Rng.create 2017))) zoo

let check_csr_equal msg a b =
  check_int (msg ^ ": n") (Graph.n a) (Graph.n b);
  check_int (msg ^ ": m") (Graph.m a) (Graph.m b);
  Alcotest.(check (array int))
    (msg ^ ": offsets") (Graph.csr_offsets a) (Graph.csr_offsets b);
  Alcotest.(check (array int))
    (msg ^ ": adjacency") (Graph.csr_adjacency a) (Graph.csr_adjacency b)

(* --- pack / to_boxed are inverses and preserve every accessor --- *)

let test_pack_roundtrip () =
  List.iter
    (fun (fam, g) ->
      let boxed = Graph.to_boxed g in
      let packed = Graph.pack g in
      check_bool (fam ^ ": to_boxed is boxed") false (Graph.is_packed boxed);
      check_bool (fam ^ ": pack is packed") true (Graph.is_packed packed);
      check_csr_equal (fam ^ ": boxed vs packed") boxed packed;
      check_csr_equal (fam ^ ": pack . to_boxed") boxed (Graph.to_boxed packed);
      let entries = Graph.n g + 1 + (2 * Graph.m g) in
      check_int (fam ^ ": packed bytes") (4 * entries) (Graph.storage_bytes packed);
      check_int (fam ^ ": boxed bytes") (8 * entries) (Graph.storage_bytes boxed))
    (zoo_graphs ())

let test_accessors_agree () =
  List.iter
    (fun (fam, g) ->
      let boxed = Graph.to_boxed g and packed = Graph.pack g in
      for u = 0 to Graph.n g - 1 do
        if Graph.degree boxed u <> Graph.degree packed u then
          Alcotest.failf "%s: degree mismatch at %d" fam u;
        Alcotest.(check (array int))
          (Printf.sprintf "%s: neighbors %d" fam u)
          (Graph.neighbors boxed u) (Graph.neighbors packed u);
        (* Identical draw sequences must select identical neighbours. *)
        let r1 = Rng.create (u + 1) and r2 = Rng.create (u + 1) in
        if Graph.degree boxed u > 0 then
          for _ = 1 to 8 do
            if Graph.random_neighbor boxed r1 u <> Graph.random_neighbor packed r2 u then
              Alcotest.failf "%s: random_neighbor diverges at %d" fam u
          done
      done;
      check_int (fam ^ ": max_degree") (Graph.max_degree boxed) (Graph.max_degree packed);
      check_int (fam ^ ": min_degree") (Graph.min_degree boxed) (Graph.min_degree packed);
      check_bool (fam ^ ": mem_edge") true
        (Graph.n g < 2
        || Graph.mem_edge boxed 0 1 = Graph.mem_edge packed 0 1))
    (zoo_graphs ())

(* --- Kernel equivalence: same seed, same rounds, same sets --- *)

let run_cobra g ~seed ~rounds =
  let n = Graph.n g in
  let rng = Rng.create seed in
  let current = Bitset.create n and next = Bitset.create n in
  Bitset.add current 0;
  let tx = ref 0 in
  let trace = Buffer.create 256 in
  for _ = 1 to rounds do
    tx :=
      !tx
      + Process.cobra_step g rng ~branching:(Process.Fixed 2) ~lazy_:false ~current ~next;
    Bitset.blit ~src:next ~dst:current;
    Buffer.add_string trace (Printf.sprintf "%d;" (Bitset.cardinal current))
  done;
  (!tx, Buffer.contents trace, Bitset.to_list current)

let run_cobra_keyed g ~master ~rounds =
  let n = Graph.n g in
  let ctx = Process.make_keyed_ctx g ~master in
  let current = Bitset.create n and next = Bitset.create n in
  Bitset.add current 0;
  let tx = ref 0 in
  for round = 1 to rounds do
    tx :=
      !tx
      + Process.cobra_step_keyed g ctx ~round ~branching:(Process.Fixed 2) ~lazy_:false
          ~current ~next;
    Bitset.blit ~src:next ~dst:current
  done;
  (!tx, Bitset.to_list current)

let run_bips g ~seed ~rounds =
  let n = Graph.n g in
  let rng = Rng.create seed in
  let current = Bitset.create n and next = Bitset.create n in
  Bitset.add current 0;
  for _ = 1 to rounds do
    Process.bips_step g rng ~branching:(Process.Bernoulli 0.5) ~lazy_:false ~source:0
      ~current ~next;
    Bitset.blit ~src:next ~dst:current
  done;
  Bitset.to_list current

let test_kernels_bit_identical () =
  List.iter
    (fun (fam, g) ->
      let boxed = Graph.to_boxed g and packed = Graph.pack g in
      let tx_b, trace_b, set_b = run_cobra boxed ~seed:7 ~rounds:12 in
      let tx_p, trace_p, set_p = run_cobra packed ~seed:7 ~rounds:12 in
      check_int (fam ^ ": cobra transmissions") tx_b tx_p;
      Alcotest.(check string) (fam ^ ": cobra cardinal trace") trace_b trace_p;
      Alcotest.(check (list int)) (fam ^ ": cobra final set") set_b set_p;
      let ktx_b, kset_b = run_cobra_keyed boxed ~master:2017 ~rounds:12 in
      let ktx_p, kset_p = run_cobra_keyed packed ~master:2017 ~rounds:12 in
      check_int (fam ^ ": keyed cobra transmissions") ktx_b ktx_p;
      Alcotest.(check (list int)) (fam ^ ": keyed cobra final set") kset_b kset_p;
      Alcotest.(check (list int))
        (fam ^ ": bips final set")
        (run_bips boxed ~seed:11 ~rounds:12)
        (run_bips packed ~seed:11 ~rounds:12))
    (zoo_graphs ())

(* --- Solver equivalence: CG over the grounded Laplacian --- *)

let test_solver_bit_identical () =
  List.iter
    (fun (fam, g) ->
      if Props.is_connected g then begin
        let boxed = Graph.to_boxed g and packed = Graph.pack g in
        let hb = Walk_theory.hitting_times boxed ~target:0 in
        let hp = Walk_theory.hitting_times packed ~target:0 in
        (* Bit-identical, not approximately equal: the packed gather
           accumulates in the same order as the boxed one. *)
        Array.iteri
          (fun u x ->
            if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float hp.(u))) then
              Alcotest.failf "%s: hitting time differs at %d: %.17g vs %.17g" fam u x hp.(u))
          hb
      end)
    (zoo_graphs ())

(* --- .cgr round trip --- *)

let with_tmp f =
  let path = Filename.temp_file "cobra_test" ".cgr" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_cgr_roundtrip () =
  List.iter
    (fun (fam, g) ->
      with_tmp (fun path ->
          Cgr.write path g;
          let expected_bytes = 32 + (4 * (Graph.n g + 1 + (2 * Graph.m g))) in
          check_int (fam ^ ": file size") expected_bytes (Unix.stat path).Unix.st_size;
          let eager = Cgr.read_eager path in
          let mapped = Cgr.read_mmap path in
          check_bool (fam ^ ": eager is packed") true (Graph.is_packed eager);
          check_bool (fam ^ ": mmap is packed") true (Graph.is_packed mapped);
          check_csr_equal (fam ^ ": eager round trip") g eager;
          check_csr_equal (fam ^ ": mmap round trip") g mapped;
          (* Dispatch through the generic loader must land here too. *)
          check_bool (fam ^ ": sniff") true (Cgr.is_cgr_file path);
          check_csr_equal (fam ^ ": read_file dispatch") g (Graph_io.read_file path)))
    (zoo_graphs ())

(* A simulation driven off the mmap-backed graph is bit-identical to
   one on the original: storage is invisible to the draw sequence. *)
let test_cgr_simulation_identical () =
  let g = Gen.by_name "ba:4" ~n:300 (Rng.create 5) in
  with_tmp (fun path ->
      Cgr.write path g;
      let mapped = Cgr.read_mmap path in
      let tx_a, trace_a, set_a = run_cobra g ~seed:13 ~rounds:10 in
      let tx_b, trace_b, set_b = run_cobra mapped ~seed:13 ~rounds:10 in
      check_int "transmissions" tx_a tx_b;
      Alcotest.(check string) "trace" trace_a trace_b;
      Alcotest.(check (list int)) "final set" set_a set_b)

(* --- Malformed files are rejected, never misread --- *)

let expect_bad name f =
  match f () with
  | (_ : Graph.t) -> Alcotest.failf "%s: malformed file was accepted" name
  | exception Cgr.Bad_file _ -> ()

let patch_byte path ~pos ~byte =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd pos Unix.SEEK_SET : int);
      ignore (Unix.write fd (Bytes.make 1 (Char.chr byte)) 0 1 : int))

let truncate_to path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.ftruncate fd len)

let test_cgr_rejects_malformed () =
  let g = Gen.by_name "hypercube" ~n:64 (Rng.create 1) in
  let size = 32 + (4 * (Graph.n g + 1 + (2 * Graph.m g))) in
  let fresh f =
    with_tmp (fun path ->
        Cgr.write path g;
        f path)
  in
  (* Truncation at several depths: inside the header, inside the
     offsets, one byte short of complete. *)
  List.iter
    (fun len ->
      fresh (fun path ->
          truncate_to path len;
          expect_bad (Printf.sprintf "truncated to %d (eager)" len) (fun () ->
              Cgr.read_eager path);
          expect_bad (Printf.sprintf "truncated to %d (mmap)" len) (fun () ->
              Cgr.read_mmap path)))
    [ 0; 16; 40; size - 1 ];
  (* A trailing extra byte is as torn as a missing one. *)
  fresh (fun path ->
      let oc = open_out_gen [ Open_append; Open_binary ] 0 path in
      output_char oc '\x00';
      close_out oc;
      expect_bad "oversize (eager)" (fun () -> Cgr.read_eager path);
      expect_bad "oversize (mmap)" (fun () -> Cgr.read_mmap path));
  (* Wrong version and nonzero reserved flags. *)
  fresh (fun path ->
      patch_byte path ~pos:8 ~byte:9;
      expect_bad "bad version" (fun () -> Cgr.read_eager path));
  fresh (fun path ->
      patch_byte path ~pos:12 ~byte:1;
      expect_bad "nonzero flags" (fun () -> Cgr.read_mmap path));
  (* A corrupted magic is simply not a .cgr file: the sniff says no and
     the generic loader falls back to the text parser (which then fails
     on binary junk with its own error, not a misparse). *)
  fresh (fun path ->
      patch_byte path ~pos:0 ~byte:Char.(code 'X');
      check_bool "sniff rejects" false (Cgr.is_cgr_file path);
      match Graph_io.read_file path with
      | (_ : Graph.t) -> Alcotest.fail "binary junk parsed as text"
      | exception Failure _ -> ());
  (* The eager loader's structural walk catches payload corruption the
     size checks cannot: an adjacency entry pointing past n. *)
  fresh (fun path ->
      patch_byte path ~pos:(size - 1) ~byte:0x7f;
      expect_bad "out-of-range adjacency (eager)" (fun () -> Cgr.read_eager path))

(* --- QCheck: random multigraph edge lists, packed = boxed --- *)

let random_graph_equiv =
  QCheck.Test.make ~name:"random graphs: packed and boxed bit-identical" ~count:60
    QCheck.(pair (int_range 2 50) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let m = Rng.int_below rng (4 * n) in
      (* A ring base keeps every vertex non-isolated (the kernels
         require it); the random extras add skew and duplicates. *)
      let edges =
        Array.init (n + m) (fun i ->
            if i < n then (i, (i + 1) mod n)
            else begin
              let u = Rng.int_below rng n in
              let v = (u + 1 + Rng.int_below rng (n - 1)) mod n in
              (u, v)
            end)
      in
      let boxed = Graph.of_edge_array ~n edges in
      let packed = Graph.pack boxed in
      let tx_b, trace_b, set_b = run_cobra boxed ~seed:(seed + 1) ~rounds:6 in
      let tx_p, trace_p, set_p = run_cobra packed ~seed:(seed + 1) ~rounds:6 in
      Graph.csr_offsets boxed = Graph.csr_offsets packed
      && Graph.csr_adjacency boxed = Graph.csr_adjacency packed
      && tx_b = tx_p && trace_b = trace_p && set_b = set_p)

let () =
  Alcotest.run "packed"
    [
      ( "storage",
        [
          Alcotest.test_case "pack/to_boxed round trip" `Quick test_pack_roundtrip;
          Alcotest.test_case "accessors agree" `Quick test_accessors_agree;
          Alcotest.test_case "kernels bit-identical" `Quick test_kernels_bit_identical;
          Alcotest.test_case "CG solver bit-identical" `Quick test_solver_bit_identical;
        ] );
      ( "cgr",
        [
          Alcotest.test_case "write/eager/mmap round trip" `Quick test_cgr_roundtrip;
          Alcotest.test_case "simulation on mmap graph" `Quick test_cgr_simulation_identical;
          Alcotest.test_case "malformed files rejected" `Quick test_cgr_rejects_malformed;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest random_graph_equiv ]);
    ]
