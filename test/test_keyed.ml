(* Keyed (counter-based) randomness: unit tests for the Keyed stream
   itself, and the tentpole property of the domain-sharded kernels —
   bit-identical results for every pool size.

   Pool widths tested are 1, 2 and 4 total workers (num_domains 0/1/3),
   plus an optional extra width from the COBRA_TEST_DOMAINS environment
   variable so CI can probe an arbitrary configuration.  The small
   graphs here force the sharded path with ~dense_threshold:1; results
   must equal the no-pool serial keyed run exactly. *)

module Bitset = Cobra_bitset.Bitset
module Graph = Cobra_graph.Graph
module Gen = Cobra_graph.Gen
module Keyed = Cobra_prng.Keyed
module Rng = Cobra_prng.Rng
module Pool = Cobra_parallel.Pool
module Process = Cobra_core.Process
module Cobra = Cobra_core.Cobra
module Bips = Cobra_core.Bips
module Sis = Cobra_core.Sis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Total worker counts exercised by every invariance test. *)
let pool_widths =
  let base = [ 1; 2; 4 ] in
  match Sys.getenv_opt "COBRA_TEST_DOMAINS" with
  | Some s ->
      (match int_of_string_opt s with
      | Some k when k >= 1 && not (List.mem k base) -> base @ [ k ]
      | _ -> base)
  | None -> base

let with_width width f = Pool.with_pool ~num_domains:(width - 1) f

(* --- Keyed stream units --- *)

let draws k n = List.init n (fun _ -> Keyed.next64 k)

let test_replay () =
  let a = Keyed.create ~master:42 in
  let b = Keyed.create ~master:42 in
  Keyed.position a ~round:3 ~vertex:17;
  Keyed.position b ~round:3 ~vertex:17;
  Alcotest.(check (list int64)) "same position, same stream" (draws a 8) (draws b 8);
  (* Repositioning replays from the start of the (round, vertex) stream
     regardless of how far the previous position was consumed. *)
  Keyed.position a ~round:3 ~vertex:17;
  Keyed.position b ~round:3 ~vertex:17;
  ignore (Keyed.next64 b);
  Keyed.position b ~round:3 ~vertex:17;
  Alcotest.(check (list int64)) "reposition replays" (draws a 4) (draws b 4)

let test_distinct_positions () =
  let k = Keyed.create ~master:42 in
  let first ~stream ~round ~vertex =
    Keyed.position ~stream k ~round ~vertex;
    Keyed.next64 k
  in
  let base = first ~stream:0 ~round:1 ~vertex:1 in
  check_bool "round separates" true (base <> first ~stream:0 ~round:2 ~vertex:1);
  check_bool "vertex separates" true (base <> first ~stream:0 ~round:1 ~vertex:2);
  check_bool "stream separates" true (base <> first ~stream:1 ~round:1 ~vertex:1);
  let other = Keyed.create ~master:43 in
  Keyed.position other ~round:1 ~vertex:1;
  check_bool "master separates" true (base <> Keyed.next64 other)

let test_copy_independent () =
  let a = Keyed.create ~master:7 in
  Keyed.position a ~round:5 ~vertex:9;
  let b = Keyed.copy a in
  let da = draws a 6 in
  let db = draws b 6 in
  Alcotest.(check (list int64)) "copy continues identically" da db

let test_int_below_range () =
  let k = Keyed.create ~master:1 in
  List.iter
    (fun bound ->
      Keyed.position k ~round:1 ~vertex:bound;
      for _ = 1 to 200 do
        let v = Keyed.int_below k bound in
        if v < 0 || v >= bound then Alcotest.failf "int_below %d returned %d" bound v
      done)
    [ 1; 2; 3; 7; 63; 64; 1000 ]

let test_int_below_uniform_ish () =
  (* Coarse uniformity: 6 buckets, 6000 draws, each bucket within 30%
     of its expectation.  Deterministic given the fixed key. *)
  let k = Keyed.create ~master:2 in
  Keyed.position k ~round:1 ~vertex:0;
  let counts = Array.make 6 0 in
  for _ = 1 to 6000 do
    let v = Keyed.int_below k 6 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 700 || c > 1300 then Alcotest.failf "bucket %d count %d far from 1000" i c)
    counts

let test_bernoulli_degenerate () =
  (* p <= 0 and p >= 1 must consume no randomness, matching the
     sequential Rng contract that keeps Fixed/Bernoulli streams
     aligned. *)
  let a = Keyed.create ~master:3 in
  Keyed.position a ~round:2 ~vertex:4;
  let b = Keyed.copy a in
  check_bool "p=1 true" true (Keyed.bernoulli a 1.0);
  check_bool "p=0 false" false (Keyed.bernoulli a 0.0);
  check_bool "p=1.5 true" true (Keyed.bernoulli a 1.5);
  Alcotest.(check int64) "no draws consumed" (Keyed.next64 b) (Keyed.next64 a);
  (* Non-degenerate p consumes exactly one draw. *)
  ignore (Keyed.bernoulli a 0.5);
  ignore (Keyed.next64 b);
  Alcotest.(check int64) "one draw consumed" (Keyed.next64 b) (Keyed.next64 a)

let test_float01_range () =
  let k = Keyed.create ~master:4 in
  Keyed.position k ~round:1 ~vertex:0;
  for _ = 1 to 1000 do
    let x = Keyed.float01 k in
    if not (x >= 0.0 && x < 1.0) then Alcotest.failf "float01 out of range: %f" x
  done

let test_derive_seed_stable () =
  let s = Keyed.derive_seed ~master:11 ~stream:1 ~round:3 ~vertex:5 in
  Alcotest.(check int64) "derive_seed is a pure function" s
    (Keyed.derive_seed ~master:11 ~stream:1 ~round:3 ~vertex:5);
  check_bool "stream separates seeds" true
    (s <> Keyed.derive_seed ~master:11 ~stream:2 ~round:3 ~vertex:5)

let test_round_base_hoist () =
  (* position_at with a hoisted round_base must land on exactly the
     position that the two-mix position computes. *)
  let a = Keyed.create ~master:17 in
  let b = Keyed.create ~master:17 in
  List.iter
    (fun (round, vertex) ->
      Keyed.position a ~round ~vertex;
      let base = Keyed.round_base b ~round in
      Keyed.position_at b ~base ~vertex;
      Alcotest.(check (list int64))
        (Printf.sprintf "round=%d vertex=%d" round vertex)
        (draws a 4) (draws b 4))
    [ (0, 0); (1, 1); (3, 17); (12, 65535); (100, 1) ];
  (* A non-default stream flows through the base the same way. *)
  Keyed.position ~stream:2 a ~round:5 ~vertex:9;
  let base = Keyed.round_base ~stream:2 b ~round:5 in
  Keyed.position_at b ~base ~vertex:9;
  Alcotest.(check (list int64)) "stream=2 hoist" (draws a 4) (draws b 4)

let test_masked_and_run_draw_compatible () =
  (* mask_below is the int_below rejection mask; masked_below and
     int_below_run must be draw-for-draw interchangeable with repeated
     int_below — same values, same counter consumption (including
     rejections). *)
  List.iter
    (fun n ->
      let mask = Keyed.mask_below n in
      check_bool
        (Printf.sprintf "mask covers n=%d" n)
        true
        (mask >= n - 1 && (mask = 1 || mask / 2 < n - 1) && mask land (mask + 1) = 0);
      let a = Keyed.create ~master:23 in
      let b = Keyed.create ~master:23 in
      let c = Keyed.create ~master:23 in
      Keyed.position a ~round:1 ~vertex:n;
      Keyed.position b ~round:1 ~vertex:n;
      Keyed.position c ~round:1 ~vertex:n;
      let count = 64 in
      let out = Array.make count (-1) in
      Keyed.int_below_run a n ~out ~count;
      for i = 0 to count - 1 do
        check_int (Printf.sprintf "n=%d draw %d (int_below)" n i) out.(i) (Keyed.int_below b n);
        check_int
          (Printf.sprintf "n=%d draw %d (masked_below)" n i)
          out.(i)
          (Keyed.masked_below c ~mask n)
      done;
      (* All three cursors consumed the same number of draws. *)
      let va = Keyed.next64 a and vb = Keyed.next64 b and vc = Keyed.next64 c in
      check_bool (Printf.sprintf "n=%d counters aligned" n) true (va = vb && vb = vc))
    [ 1; 2; 3; 4; 7; 8; 63; 64; 65; 1000; 0x3FFFFFFF; 0x40000000; 0x40000001 ]

(* --- Pool-size invariance of the sharded kernels --- *)

let graphs = [ ("hypercube d=6", Gen.hypercube 6); ("torus 8x8", Gen.torus ~dims:[ 8; 8 ]) ]

(* Fingerprint of a detailed cover run: every field the runner reports. *)
let run_fingerprint (r : Cobra.run option) =
  match r with
  | None -> "censored"
  | Some r ->
      Printf.sprintf "rounds=%d tx=%d visited=%s active=%s" r.rounds r.transmissions
        (String.concat "," (Array.to_list (Array.map string_of_int r.visited_sizes)))
        (String.concat "," (Array.to_list (Array.map string_of_int r.active_sizes)))

let keyed_cover ?pool ~branching ~lazy_ g =
  let rng = Rng.create 0 in
  run_fingerprint
    (Cobra.run_cover_detailed g rng ~branching ~lazy_ ?pool
       ~rng_mode:(Process.Keyed { master = 2017 }) ~dense_threshold:1 ~start:0 ())

let test_cobra_pool_invariance () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun (bname, branching, lazy_) ->
          let serial = keyed_cover ~branching ~lazy_ g in
          List.iter
            (fun width ->
              with_width width (fun pool ->
                  Alcotest.(check string)
                    (Printf.sprintf "%s %s keyed, %d worker(s)" name bname width)
                    serial
                    (keyed_cover ~pool ~branching ~lazy_ g)))
            pool_widths)
        [
          ("b=2", Process.Fixed 2, false);
          ("b=3 lazy", Process.Fixed 3, true);
          ("rho=0.4", Process.Bernoulli 0.4, false);
        ])
    graphs

let keyed_infected ?pool g =
  let rng = Rng.create 0 in
  Bips.infected_after g rng ?pool
    ~rng_mode:(Process.Keyed { master = 99 })
    ~dense_threshold:1 ~rounds:12 ~source:1 ()

let test_bips_pool_invariance () =
  List.iter
    (fun (name, g) ->
      let serial = keyed_infected g in
      List.iter
        (fun width ->
          with_width width (fun pool ->
              check_bool
                (Printf.sprintf "%s bips keyed set, %d worker(s)" name width)
                true
                (Bitset.equal serial (keyed_infected ~pool g))))
        pool_widths)
    graphs

let keyed_sis ?pool g =
  let rng = Rng.create 0 in
  let initial = Bitset.of_list (Graph.n g) [ 0; 3; 5 ] in
  let outcome, sizes =
    Sis.run_trajectory g rng ?pool
      ~rng_mode:(Process.Keyed { master = 123 })
      ~dense_threshold:1 ~max_rounds:200 ~initial ()
  in
  let tag =
    match outcome with
    | Sis.Extinct r -> Printf.sprintf "extinct@%d" r
    | Sis.Saturated r -> Printf.sprintf "saturated@%d" r
    | Sis.Censored -> "censored"
  in
  tag ^ ":" ^ String.concat "," (Array.to_list (Array.map string_of_int sizes))

let test_sis_pool_invariance () =
  List.iter
    (fun (name, g) ->
      let serial = keyed_sis g in
      List.iter
        (fun width ->
          with_width width (fun pool ->
              Alcotest.(check string)
                (Printf.sprintf "%s sis keyed, %d worker(s)" name width)
                serial (keyed_sis ~pool g)))
        pool_widths)
    graphs

let test_dense_threshold_irrelevant () =
  (* The threshold decides scheduling, never results: serial sparse
     path vs forced sharded path must agree draw for draw. *)
  let g = Gen.hypercube 6 in
  let forced = keyed_cover ~branching:(Process.Fixed 2) ~lazy_:false g in
  let rng = Rng.create 0 in
  let lazy_default =
    run_fingerprint
      (Cobra.run_cover_detailed g rng ~branching:(Process.Fixed 2) ~lazy_:false
         ~rng_mode:(Process.Keyed { master = 2017 }) ~start:0 ())
  in
  Alcotest.(check string) "threshold does not change results" forced lazy_default

(* A frontier of [card] distinct vertices spread across the universe
   (stride coprime to n), so threshold-boundary tests touch more than
   the first word. *)
let spread_frontier n card =
  Bitset.of_list n (List.init card (fun i -> i * 97 mod n))

let test_dense_threshold_boundary () =
  (* Property at the scheduling crossover: for frontier cardinalities
     threshold-1 (serial path), threshold (serial path) and threshold+1
     (sharded path), a pinned-threshold pooled step must produce the
     same next set, cardinality and transmission count as the poolless
     serial step.  The universe (torus 10x10, n=100) is deliberately
     not a multiple of bits_per_word, so the sharded scan's last
     partial word is exercised too. *)
  let g = Gen.torus ~dims:[ 10; 10 ] in
  let n = Graph.n g in
  check_bool "n exercises a partial last word" true (n mod Bitset.bits_per_word <> 0);
  let threshold = 16 in
  List.iter
    (fun card ->
      let current = spread_frontier n card in
      check_int "frontier built with exact cardinality" card (Bitset.cardinal current);
      let step ?pool ?dense_threshold () =
        let ctx = Process.make_keyed_ctx ?pool ?dense_threshold g ~master:7 in
        let next = Bitset.create n in
        let tx =
          Process.cobra_step_keyed g ctx ~round:2 ~branching:(Process.Fixed 2) ~lazy_:false
            ~current ~next
        in
        (tx, next)
      in
      let tx_serial, next_serial = step () in
      List.iter
        (fun width ->
          with_width width (fun pool ->
              let tx_pool, next_pool = step ~pool ~dense_threshold:threshold () in
              let name what =
                Printf.sprintf "card=%d width=%d: %s" card width what
              in
              check_int (name "transmissions") tx_serial tx_pool;
              check_bool (name "next sets equal") true (Bitset.equal next_serial next_pool);
              check_int (name "cardinal repaired exactly")
                (Bitset.cardinal next_serial) (Bitset.cardinal next_pool)))
        [ 2; 3 ])
    [ threshold - 1; threshold; threshold + 1 ]

let test_scan_last_shard_edge () =
  (* keyed_scan_par (BIPS/SIS) writes [next] in word-aligned chunks;
     with n = 100 the final chunk covers a 37-bit partial word.  The
     sharded scan must agree with the serial loop on the set and on the
     accumulated cardinality for every pool width. *)
  let g = Gen.torus ~dims:[ 10; 10 ] in
  let n = Graph.n g in
  let current = spread_frontier n 40 in
  let bips ?pool ?dense_threshold () =
    let ctx = Process.make_keyed_ctx ?pool ?dense_threshold g ~master:31 in
    let next = Bitset.create n in
    Process.bips_step_keyed g ctx ~round:3 ~branching:(Process.Fixed 2) ~lazy_:false ~source:3
      ~current ~next;
    next
  in
  let sis ?pool ?dense_threshold () =
    let ctx = Process.make_keyed_ctx ?pool ?dense_threshold g ~master:31 in
    let next = Bitset.create n in
    Process.sis_step_keyed g ctx ~round:3 ~branching:(Process.Bernoulli 0.5) ~lazy_:true
      ~current ~next;
    next
  in
  let bips_serial = bips () in
  let sis_serial = sis () in
  List.iter
    (fun width ->
      with_width width (fun pool ->
          let bips_pool = bips ~pool ~dense_threshold:1 () in
          check_bool
            (Printf.sprintf "bips set, %d worker(s)" width)
            true (Bitset.equal bips_serial bips_pool);
          check_int
            (Printf.sprintf "bips cardinal, %d worker(s)" width)
            (Bitset.cardinal bips_serial) (Bitset.cardinal bips_pool);
          let sis_pool = sis ~pool ~dense_threshold:1 () in
          check_bool
            (Printf.sprintf "sis set, %d worker(s)" width)
            true (Bitset.equal sis_serial sis_pool);
          check_int
            (Printf.sprintf "sis cardinal, %d worker(s)" width)
            (Bitset.cardinal sis_serial) (Bitset.cardinal sis_pool)))
    pool_widths

(* --- Sequential mode unaffected --- *)

let test_sequential_ignores_pool () =
  let g = Gen.hypercube 6 in
  let run ?pool () =
    let rng = Rng.create 7 in
    run_fingerprint (Cobra.run_cover_detailed g rng ?pool ~start:0 ())
  in
  let baseline = run () in
  with_width 3 (fun pool ->
      Alcotest.(check string) "pool is ignored under Sequential" baseline (run ~pool ()))

(* --- Keyed engine (message-passing layer) --- *)

let engine_fingerprint ?pool g =
  let module E = Cobra_net.Gossip.Cobra_engine in
  let t = E.create ?pool ~rng_mode:(Process.Keyed { master = 5 }) g ~start:0 in
  let rng = Rng.create 0 in
  (* never read in keyed mode *)
  match E.run_until_covered ~max_rounds:10_000 t rng with
  | None -> "censored"
  | Some rounds -> Printf.sprintf "rounds=%d messages=%d" rounds (E.messages_sent t)

let test_engine_keyed_invariance () =
  let g = Gen.torus ~dims:[ 8; 8 ] in
  let serial = engine_fingerprint g in
  List.iter
    (fun width ->
      with_width width (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "engine keyed, %d worker(s)" width)
            serial (engine_fingerprint ~pool g)))
    pool_widths

(* --- Parallel spectral matvec --- *)

let test_matvec_pool_bit_identical () =
  let g = Gen.random_regular ~n:200 ~r:6 (Rng.create 3) in
  let n = Graph.n g in
  let rng = Rng.create 9 in
  let x = Array.init n (fun _ -> Rng.float01 rng -. 0.5) in
  let y_serial = Array.make n 0.0 and y_pool = Array.make n 0.0 in
  with_width 4 (fun pool ->
      Cobra_spectral.Matvec.apply_normalized g x y_serial;
      Cobra_spectral.Matvec.apply_normalized ~pool g x y_pool;
      for i = 0 to n - 1 do
        if not (Int64.equal (Int64.bits_of_float y_serial.(i)) (Int64.bits_of_float y_pool.(i)))
        then Alcotest.failf "normalized matvec row %d differs" i
      done;
      Cobra_spectral.Matvec.apply_transition g x y_serial;
      Cobra_spectral.Matvec.apply_transition ~pool g x y_pool;
      for i = 0 to n - 1 do
        if not (Int64.equal (Int64.bits_of_float y_serial.(i)) (Int64.bits_of_float y_pool.(i)))
        then Alcotest.failf "transition matvec row %d differs" i
      done;
      let l_serial = Cobra_spectral.Eigen.second_eigenvalue ~tol:1e-9 g in
      let l_pool = Cobra_spectral.Eigen.second_eigenvalue ~tol:1e-9 ~pool g in
      if not (Int64.equal (Int64.bits_of_float l_serial) (Int64.bits_of_float l_pool)) then
        Alcotest.failf "second_eigenvalue differs: %.17g vs %.17g" l_serial l_pool)

(* --- Sequential cobra_step ?scratch fast path --- *)

let test_scratch_equivalence () =
  let g = Gen.torus ~dims:[ 8; 8 ] in
  let n = Graph.n g in
  let rng_a = Rng.create 21 and rng_b = Rng.create 21 in
  let scratch = Array.make Process.sparse_frontier_threshold 0 in
  let cur_a = Bitset.of_list n [ 0; 5; 17 ] and cur_b = Bitset.of_list n [ 0; 5; 17 ] in
  let next_a = Bitset.create n and next_b = Bitset.create n in
  for _ = 1 to 30 do
    let ta =
      Process.cobra_step g rng_a ~branching:(Process.Fixed 2) ~lazy_:false ~current:cur_a
        ~next:next_a
    in
    let tb =
      Process.cobra_step ~scratch g rng_b ~branching:(Process.Fixed 2) ~lazy_:false
        ~current:cur_b ~next:next_b
    in
    check_int "transmissions" ta tb;
    check_bool "next sets equal" true (Bitset.equal next_a next_b);
    Bitset.blit ~src:next_a ~dst:cur_a;
    Bitset.blit ~src:next_b ~dst:cur_b
  done

(* --- Keyed estimators --- *)

let test_estimate_keyed_invariance () =
  let g = Gen.hypercube 6 in
  let est ?pool () =
    let r =
      Cobra_core.Estimate.cover_time_keyed ?pool ~dense_threshold:1 ~master_seed:5 ~trials:4 g
    in
    (r.summary.mean, r.mean_transmissions)
  in
  let serial = est () in
  with_width 2 (fun pool ->
      check_bool "keyed estimate pool-invariant" true (serial = est ~pool ()))

let () =
  Alcotest.run "keyed"
    [
      ( "stream",
        [
          Alcotest.test_case "replay" `Quick test_replay;
          Alcotest.test_case "distinct positions" `Quick test_distinct_positions;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "int_below range" `Quick test_int_below_range;
          Alcotest.test_case "int_below uniformity" `Quick test_int_below_uniform_ish;
          Alcotest.test_case "bernoulli degenerate" `Quick test_bernoulli_degenerate;
          Alcotest.test_case "float01 range" `Quick test_float01_range;
          Alcotest.test_case "derive_seed" `Quick test_derive_seed_stable;
          Alcotest.test_case "round_base hoist" `Quick test_round_base_hoist;
          Alcotest.test_case "batched draws" `Quick test_masked_and_run_draw_compatible;
        ] );
      ( "pool invariance",
        [
          Alcotest.test_case "cobra cover" `Quick test_cobra_pool_invariance;
          Alcotest.test_case "bips infected set" `Quick test_bips_pool_invariance;
          Alcotest.test_case "sis trajectory" `Quick test_sis_pool_invariance;
          Alcotest.test_case "dense threshold" `Quick test_dense_threshold_irrelevant;
          Alcotest.test_case "threshold boundary" `Quick test_dense_threshold_boundary;
          Alcotest.test_case "scan last-shard edge" `Quick test_scan_last_shard_edge;
          Alcotest.test_case "sequential ignores pool" `Quick test_sequential_ignores_pool;
          Alcotest.test_case "engine" `Quick test_engine_keyed_invariance;
          Alcotest.test_case "matvec + eigen" `Quick test_matvec_pool_bit_identical;
          Alcotest.test_case "estimate" `Quick test_estimate_keyed_invariance;
        ] );
      ( "sequential paths",
        [ Alcotest.test_case "cobra_step scratch" `Quick test_scratch_equivalence ] );
    ]
